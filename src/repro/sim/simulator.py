"""System-level simulator of the scalable accelerator (Sec. V-A).

Executes a Round schedule with an atom-engine placement over the full
machine model — engines (compute), distributed buffers (capacity +
Algorithm 3 evictions), 2D-mesh NoC (contention), and HBM (bandwidth) —
and reports the paper's metrics: end-to-end cycles, PE utilization, NoC
blocking overhead, on-chip reuse ratio, DRAM traffic, and energy.

Timing model per Round ``t`` (double buffering):

* *blocking* I/O — data produced in Round ``t-1`` (no chance to prefetch)
  must arrive before compute starts;
* *prefetchable* I/O — weights, network inputs, and data produced earlier
  than ``t-1`` overlap with compute;
* ``round_time = blocking + max(compute, prefetch_noc, prefetch_dram)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atoms.dag import AtomicDAG
from repro.buffering.policy import BufferPolicy, weight_entry_key
from repro.config import ArchConfig
from repro.engine.energy import atom_energy
from repro.memory.buffer import EngineBuffer, make_buffers
from repro.memory.hbm import HbmModel
from repro.metrics import EnergyBreakdown, RunResult
from repro.noc.mesh import Mesh2D
from repro.noc.torus import make_topology
from repro.noc.traffic import NocModel, Transfer
from repro.noc.wormhole import WormholeSimulator
from repro.obs.tracer import get_tracer
from repro.scheduling.rounds import Schedule
from repro.sim.timeline import (
    EngineInterval,
    HbmSample,
    LinkSample,
    RoundWindow,
    SimTimeline,
)

#: Weight slices larger than this fraction of the buffer stream from DRAM
#: instead of being retained for reuse.
WEIGHT_RESIDENCY_FRACTION = 2


@dataclass(frozen=True)
class RoundTrace:
    """Timing breakdown of one executed Round (for profiling reports).

    Attributes:
        index: Round number.
        num_atoms: Atoms executed.
        compute_cycles: Slowest atom's compute.
        blocking_noc_cycles: NoC time serialized before compute.
        blocking_dram_cycles: DRAM time serialized before compute.
        prefetch_noc_cycles: NoC time overlapped with compute.
        prefetch_dram_cycles: DRAM time overlapped with compute.
        round_cycles: Total wall time of the Round.
    """

    index: int
    num_atoms: int
    compute_cycles: int
    blocking_noc_cycles: int
    blocking_dram_cycles: int
    prefetch_noc_cycles: int
    prefetch_dram_cycles: int
    round_cycles: int

    @property
    def bound_by(self) -> str:
        """What limited this Round: "compute", "noc", or "dram"."""
        overlapped = max(
            self.compute_cycles,
            self.prefetch_noc_cycles,
            self.prefetch_dram_cycles,
        )
        if overlapped == self.compute_cycles:
            return "compute"
        if overlapped == self.prefetch_noc_cycles:
            return "noc"
        return "dram"


@dataclass
class _RoundIO:
    """Accumulated I/O of one Round, split by overlap class."""

    blocking_transfers: list[Transfer] = field(default_factory=list)
    prefetch_transfers: list[Transfer] = field(default_factory=list)
    blocking_dram_bytes: int = 0
    blocking_dram_requests: int = 0
    prefetch_dram_bytes: int = 0
    prefetch_dram_requests: int = 0
    writeback_bytes: int = 0
    onchip_bytes: int = 0
    offchip_bytes: int = 0


class SystemSimulator:
    """Simulates one (schedule, placement) solution on one architecture.

    Args:
        arch: Machine configuration.
        dag: The atomic DAG being executed.
        strategy: Label recorded in the result (e.g. ``"AD"``).
        noc_mode: ``"analytical"`` (default) or ``"wormhole"``.
        mesh: Pre-built topology to reuse; built from ``arch`` when None.
    """

    def __init__(
        self,
        arch: ArchConfig,
        dag: AtomicDAG,
        strategy: str = "AD",
        noc_mode: str = "analytical",
        mesh: Mesh2D | None = None,
    ) -> None:
        if noc_mode not in ("analytical", "wormhole"):
            raise ValueError(f"unknown noc_mode {noc_mode!r}")
        self.arch = arch
        self.dag = dag
        self.strategy = strategy
        self.noc_mode = noc_mode
        # Search loops pass the mesh from their SearchContext so thousands
        # of candidate simulations share one topology object.
        self.mesh = mesh if mesh is not None else make_topology(
            arch.mesh_rows, arch.mesh_cols, arch.noc.topology
        )
        self.noc = NocModel(self.mesh, arch.noc, arch.energy)
        self._wormhole = (
            WormholeSimulator(self.mesh, arch.noc)
            if noc_mode == "wormhole"
            else None
        )

    def _noc_cycles(self, transfers: list[Transfer]) -> int:
        """Round NoC delay under the selected fidelity model."""
        if self._wormhole is not None and transfers:
            return self._wormhole.simulate(transfers).makespan
        return self.noc.round_cost(transfers).cycles

    def run(self, schedule: Schedule, placement: dict[int, int]) -> RunResult:
        """Execute the schedule and return the full metric set.

        Raises:
            ValueError: When the schedule or placement is inconsistent with
                the DAG (validated up front).
        """
        with self._run_span():
            result, _, _ = self._run(schedule, placement, collect_trace=False)
        return result

    def run_traced(
        self, schedule: Schedule, placement: dict[int, int]
    ) -> tuple[RunResult, list[RoundTrace]]:
        """Like :meth:`run`, also returning the per-Round timing trace."""
        with self._run_span():
            result, traces, _ = self._run(
                schedule, placement, collect_trace=True
            )
        return result, traces

    def _run_span(self):
        """A ``sim.run`` tracer span labelling one whole simulation."""
        return get_tracer().span(
            "sim.run",
            category="sim",
            workload=self.dag.graph.name,
            strategy=self.strategy,
        )

    def run_timeline(
        self, schedule: Schedule, placement: dict[int, int]
    ) -> tuple[RunResult, SimTimeline]:
        """Like :meth:`run`, also building the full resource timeline.

        The returned :class:`~repro.sim.timeline.SimTimeline` carries
        per-engine busy intervals, Round windows, per-link NoC occupancy,
        and per-Round HBM bandwidth samples; the :class:`RunResult` is
        bit-identical to what :meth:`run` returns.
        """
        with self._run_span():
            result, _, timeline = self._run(
                schedule, placement, collect_trace=False, collect_timeline=True
            )
        assert timeline is not None
        return result, timeline

    def _run(
        self,
        schedule: Schedule,
        placement: dict[int, int],
        collect_trace: bool,
        collect_timeline: bool = False,
    ) -> tuple[RunResult, list[RoundTrace], SimTimeline | None]:
        schedule.validate(self.dag, self.arch.num_engines)
        for rnd in schedule.rounds:
            for a in rnd.atom_indices:
                if a not in placement:
                    raise ValueError(f"atom {a} has no engine placement")

        dag = self.dag
        arch = self.arch
        policy = BufferPolicy(dag, schedule)
        buffers = make_buffers(arch.num_engines, arch.engine.buffer_bytes)
        hbm = HbmModel(arch.hbm, arch.energy, arch.engine.frequency_hz)
        atom_round = schedule.atom_round()

        atom_location: dict[int, int] = {}
        weight_locations: dict[tuple[int, int], set[int]] = {}
        weight_limit = arch.engine.buffer_bytes // WEIGHT_RESIDENCY_FRACTION

        total_cycles = 0
        compute_cycles_total = 0
        noc_blocking_total = 0
        dram_blocking_total = 0
        noc_energy_pj = 0.0
        dram_energy_pj = 0.0
        mac_energy_pj = 0.0
        sram_energy_pj = 0.0
        noc_bytes_hops = 0
        total_macs_pe = 0
        onchip_bytes_total = 0
        offchip_bytes_total = 0
        traces: list[RoundTrace] = []
        tl_rounds: list[RoundWindow] = []
        tl_intervals: list[EngineInterval] = []
        tl_links: list[LinkSample] = []
        tl_hbm: list[HbmSample] = []
        tracer = get_tracer()
        atom_cycles = dag.atom_cycles

        for rnd in schedule.rounds:
            with tracer.span(
                "sim.round",
                category="sim",
                index=rnd.index,
                atoms=len(rnd.atom_indices),
            ):
                io = _RoundIO()
                t = rnd.index
                for a in rnd.atom_indices:
                    engine = placement[a]
                    self._gather_inputs(
                        a, engine, t, atom_round, atom_location, buffers, io
                    )
                    self._gather_weights(
                        a, engine, weight_locations, buffers, weight_limit,
                        io, policy, t,
                    )
                    self._store_output(
                        a, engine, buffers, policy, t, atom_location,
                        weight_locations, io,
                    )
                    cost = dag.costs[a]
                    e = atom_energy(cost, arch.energy)
                    mac_energy_pj += e.mac_pj
                    sram_energy_pj += e.sram_pj
                    if cost.uses_pe_array:
                        total_macs_pe += cost.macs

                compute = max(atom_cycles[a] for a in rnd.atom_indices)
                blocking_noc = self.noc.round_cost(io.blocking_transfers)
                prefetch_noc = self.noc.round_cost(io.prefetch_transfers)
                blocking_noc_cycles = (
                    self._noc_cycles(io.blocking_transfers)
                    if self._wormhole is not None
                    else blocking_noc.cycles
                )
                prefetch_noc_cycles = (
                    self._noc_cycles(io.prefetch_transfers)
                    if self._wormhole is not None
                    else prefetch_noc.cycles
                )
                blocking_dram = hbm.batch_cycles(
                    io.blocking_dram_bytes, io.blocking_dram_requests
                )
                prefetch_dram = hbm.batch_cycles(
                    io.prefetch_dram_bytes + io.writeback_bytes,
                    io.prefetch_dram_requests
                    + (1 if io.writeback_bytes else 0),
                )
                round_time = (
                    blocking_noc_cycles
                    + blocking_dram
                    + max(compute, prefetch_noc_cycles, prefetch_dram)
                )
                if collect_trace:
                    traces.append(
                        RoundTrace(
                            index=rnd.index,
                            num_atoms=len(rnd.atom_indices),
                            compute_cycles=compute,
                            blocking_noc_cycles=blocking_noc_cycles,
                            blocking_dram_cycles=blocking_dram,
                            prefetch_noc_cycles=prefetch_noc_cycles,
                            prefetch_dram_cycles=prefetch_dram,
                            round_cycles=round_time,
                        )
                    )
                if collect_timeline:
                    self._collect_round_timeline(
                        rnd, placement, io, total_cycles, compute,
                        blocking_noc_cycles, blocking_dram,
                        prefetch_noc_cycles, prefetch_dram, round_time, hbm,
                        tl_rounds, tl_intervals, tl_links, tl_hbm,
                    )
                total_cycles += round_time
                compute_cycles_total += compute
                noc_blocking_total += blocking_noc_cycles
                dram_blocking_total += blocking_dram
                noc_energy_pj += (
                    blocking_noc.energy_pj + prefetch_noc.energy_pj
                )
                noc_bytes_hops += (
                    blocking_noc.total_hop_bits + prefetch_noc.total_hop_bits
                ) // 8
                read_bytes = io.blocking_dram_bytes + io.prefetch_dram_bytes
                if read_bytes:
                    dram_energy_pj += hbm.access(read_bytes).energy_pj
                if io.writeback_bytes:
                    dram_energy_pj += hbm.access(
                        io.writeback_bytes, write=True
                    ).energy_pj
                onchip_bytes_total += io.onchip_bytes
                offchip_bytes_total += io.offchip_bytes

        seconds = total_cycles / arch.engine.frequency_hz
        static_pj = (
            arch.energy.static_w_per_engine * arch.num_engines * seconds * 1e12
        )
        energy = EnergyBreakdown(
            mac_pj=mac_energy_pj,
            sram_pj=sram_energy_pj,
            noc_pj=noc_energy_pj,
            dram_pj=dram_energy_pj,
            static_pj=static_pj,
        )
        peak = compute_cycles_total * arch.num_engines * arch.engine.macs_per_cycle
        served = onchip_bytes_total + offchip_bytes_total
        result = RunResult(
            strategy=self.strategy,
            workload=dag.graph.name,
            batch=dag.batch,
            total_cycles=total_cycles,
            compute_cycles=compute_cycles_total,
            noc_blocking_cycles=noc_blocking_total,
            dram_blocking_cycles=dram_blocking_total,
            num_rounds=schedule.num_rounds,
            pe_utilization=(total_macs_pe / peak) if peak else 0.0,
            onchip_reuse_ratio=(
                onchip_bytes_total / served if served else 0.0
            ),
            dram_bytes_read=hbm.total_bytes_read,
            dram_bytes_written=hbm.total_bytes_written,
            noc_bytes_hops=noc_bytes_hops,
            energy=energy,
            frequency_hz=arch.engine.frequency_hz,
        )
        timeline = None
        if collect_timeline:
            timeline = SimTimeline(
                workload=dag.graph.name,
                strategy=self.strategy,
                num_engines=arch.num_engines,
                frequency_hz=arch.engine.frequency_hz,
                macs_per_cycle=arch.engine.macs_per_cycle,
                total_cycles=total_cycles,
                compute_cycles=compute_cycles_total,
                rounds=tuple(tl_rounds),
                intervals=tuple(tl_intervals),
                links=tuple(tl_links),
                hbm=tuple(tl_hbm),
            )
        return result, traces, timeline

    def _collect_round_timeline(
        self,
        rnd,
        placement: dict[int, int],
        io: _RoundIO,
        round_start: int,
        compute: int,
        blocking_noc_cycles: int,
        blocking_dram: int,
        prefetch_noc_cycles: int,
        prefetch_dram: int,
        round_time: int,
        hbm: HbmModel,
        tl_rounds: list[RoundWindow],
        tl_intervals: list[EngineInterval],
        tl_links: list[LinkSample],
        tl_hbm: list[HbmSample],
    ) -> None:
        """Append one executed Round's resource occupancy to the timeline.

        Engine intervals start after the Round's blocking stall — the
        window in which the timing model lets compute proceed.  HBM bytes
        are the raw (pre-burst-rounding) payloads the Round moved.
        """
        dag = self.dag
        stall = blocking_noc_cycles + blocking_dram
        tl_rounds.append(
            RoundWindow(
                index=rnd.index,
                start=round_start,
                compute_cycles=compute,
                blocking_noc_cycles=blocking_noc_cycles,
                blocking_dram_cycles=blocking_dram,
                prefetch_noc_cycles=prefetch_noc_cycles,
                prefetch_dram_cycles=prefetch_dram,
                round_cycles=round_time,
            )
        )
        for a in rnd.atom_indices:
            cost = dag.costs[a]
            tl_intervals.append(
                EngineInterval(
                    engine=placement[a],
                    round_index=rnd.index,
                    atom=a,
                    label=str(dag.atoms[a].atom_id),
                    start=round_start + stall,
                    duration=cost.cycles,
                    macs=cost.macs,
                    uses_pe_array=cost.uses_pe_array,
                )
            )
        occupancy = self.noc.link_occupancy(
            io.blocking_transfers + io.prefetch_transfers
        )
        for (src, dst), busy in sorted(occupancy.items()):
            tl_links.append(LinkSample(rnd.index, src, dst, busy))
        moved = (
            io.blocking_dram_bytes
            + io.prefetch_dram_bytes
            + io.writeback_bytes
        )
        tl_hbm.append(
            HbmSample(
                round_index=rnd.index,
                start=round_start,
                duration=round_time,
                bytes_read=io.blocking_dram_bytes + io.prefetch_dram_bytes,
                bytes_written=io.writeback_bytes,
                utilization=hbm.bandwidth_utilization(moved, round_time),
            )
        )

    # ------------------------------------------------------------- internals

    def _gather_inputs(
        self,
        a: int,
        engine: int,
        t: int,
        atom_round: dict[int, int],
        atom_location: dict[int, int],
        buffers: list[EngineBuffer],
        io: _RoundIO,
    ) -> None:
        """Resolve where each input tile comes from and charge the movement.

        Network inputs always stream from DRAM (prefetchable).  Produced
        tiles come from the local buffer (free), a remote buffer (NoC), or
        DRAM if they were spilled; data produced in the immediately
        preceding Round cannot be prefetched and blocks.
        """
        dag = self.dag
        if dag.dram_input_bytes[a]:
            io.prefetch_dram_bytes += dag.dram_input_bytes[a]
            io.prefetch_dram_requests += 1
        for p in dag.preds[a]:
            nbytes = dag.edge_bytes[(p, a)]
            if nbytes == 0:
                continue
            blocking = atom_round[p] == t - 1
            loc = atom_location.get(p)
            if loc is not None and buffers[loc].contains(p):
                if loc == engine:
                    io.onchip_bytes += nbytes
                    continue
                transfer = Transfer(src=loc, dst=engine, size_bytes=nbytes, tag=str(p))
                if blocking:
                    io.blocking_transfers.append(transfer)
                else:
                    io.prefetch_transfers.append(transfer)
                io.onchip_bytes += nbytes
            else:
                # Spilled to DRAM earlier; read it back.
                if blocking:
                    io.blocking_dram_bytes += nbytes
                    io.blocking_dram_requests += 1
                else:
                    io.prefetch_dram_bytes += nbytes
                    io.prefetch_dram_requests += 1
                io.offchip_bytes += nbytes

    def _gather_weights(
        self,
        a: int,
        engine: int,
        weight_locations: dict[tuple[int, int], set[int]],
        buffers: list[EngineBuffer],
        weight_limit: int,
        io: _RoundIO,
        policy: BufferPolicy,
        t: int,
    ) -> None:
        """Source the atom's weight slice: local hit, remote copy, or DRAM."""
        dag = self.dag
        wk = dag.weight_key(a)
        if wk is None:
            return
        nbytes = dag.atom_weight_bytes[a]
        key = weight_entry_key(*wk)
        holders = weight_locations.get(wk, set())
        if engine in holders and buffers[engine].contains(key):
            io.onchip_bytes += nbytes
            return
        live_holders = [h for h in sorted(holders) if buffers[h].contains(key)]
        if live_holders:
            src = min(
                live_holders, key=lambda h: self.mesh.hop_distance(h, engine)
            )
            io.prefetch_transfers.append(
                Transfer(src=src, dst=engine, size_bytes=nbytes, tag=f"w{wk}")
            )
            io.onchip_bytes += nbytes
        else:
            io.prefetch_dram_bytes += nbytes
            io.prefetch_dram_requests += 1
            io.offchip_bytes += nbytes
        if nbytes <= weight_limit:
            evs = policy.make_room(buffers[engine], nbytes, t)
            self._apply_evictions(evs, engine, weight_locations, io)
            if buffers[engine].fits(nbytes):
                buffers[engine].store(key, nbytes)
                weight_locations.setdefault(wk, set()).add(engine)

    def _store_output(
        self,
        a: int,
        engine: int,
        buffers: list[EngineBuffer],
        policy: BufferPolicy,
        t: int,
        atom_location: dict[int, int],
        weight_locations: dict[tuple[int, int], set[int]],
        io: _RoundIO,
    ) -> None:
        """Retain the atom's output on-chip, or drain results to DRAM."""
        dag = self.dag
        nbytes = dag.atom_ofmap_bytes[a]
        if nbytes == 0:
            return
        if not dag.succs[a]:
            # Network output: drained off-chip, never buffered.
            io.writeback_bytes += nbytes
            return
        if nbytes > buffers[engine].capacity_bytes:
            # Tile larger than the whole buffer: stream straight to DRAM.
            io.writeback_bytes += nbytes
            return
        evs = policy.make_room(buffers[engine], nbytes, t + 1)
        self._apply_evictions(evs, engine, weight_locations, io)
        if buffers[engine].fits(nbytes):
            buffers[engine].store(a, nbytes)
            atom_location[a] = engine
        else:
            # Even a fully drained buffer cannot hold it: spill immediately.
            io.writeback_bytes += nbytes

    def _apply_evictions(
        self,
        evictions,
        engine: int,
        weight_locations: dict[tuple[int, int], set[int]],
        io: _RoundIO,
    ) -> None:
        for ev in evictions:
            io.writeback_bytes += ev.writeback_bytes
            if (
                isinstance(ev.key, tuple)
                and len(ev.key) == 3
                and ev.key[0] == "w"
            ):
                weight_locations.get((ev.key[1], ev.key[2]), set()).discard(engine)
