"""Event-driven system simulator for the scalable accelerator."""

from __future__ import annotations

from repro.sim.events import Event, EventQueue, Resource
from repro.sim.simulator import (
    RoundTrace,
    SystemSimulator,
    WEIGHT_RESIDENCY_FRACTION,
)
from repro.sim.timeline import (
    EngineAccounting,
    EngineInterval,
    HbmSample,
    LinkSample,
    RoundWindow,
    SimTimeline,
)

__all__ = [
    "Event",
    "EventQueue",
    "Resource",
    "RoundTrace",
    "SystemSimulator",
    "WEIGHT_RESIDENCY_FRACTION",
    "EngineAccounting",
    "EngineInterval",
    "HbmSample",
    "LinkSample",
    "RoundWindow",
    "SimTimeline",
    "simulate_timeline",
]


def simulate_timeline(
    arch,
    dag,
    schedule,
    placement,
    strategy: str = "AD",
    noc_mode: str = "analytical",
    mesh=None,
):
    """Re-simulate one solution and return ``(RunResult, SimTimeline)``.

    Convenience wrapper for callers outside the simulator package (CLI
    profiling, validators) that need the resource timeline of a finished
    solution without constructing a :class:`SystemSimulator` themselves.
    The result is bit-identical to :meth:`SystemSimulator.run` with the
    same arguments.
    """
    sim = SystemSimulator(
        arch, dag, strategy=strategy, noc_mode=noc_mode, mesh=mesh
    )
    return sim.run_timeline(schedule, placement)
