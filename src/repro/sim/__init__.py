"""Event-driven system simulator for the scalable accelerator."""

from __future__ import annotations

from repro.sim.events import Event, EventQueue, Resource
from repro.sim.simulator import (
    RoundTrace,
    SystemSimulator,
    WEIGHT_RESIDENCY_FRACTION,
)

__all__ = [
    "Event",
    "EventQueue",
    "Resource",
    "RoundTrace",
    "SystemSimulator",
    "WEIGHT_RESIDENCY_FRACTION",
]
