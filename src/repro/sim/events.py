"""A minimal event-driven kernel used by the system simulator.

Rounds synchronize globally, but *within* the window between two Round
boundaries three resources race: engine compute, the NoC, and the HBM
channel.  The kernel resolves their overlap: events complete in timestamp
order, and each resource serializes its own work while running concurrently
with the others (double buffering).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True)
class Event:
    """One scheduled completion.

    Attributes:
        time: Completion timestamp in cycles.
        seq: Tie-breaker preserving insertion order.
        kind: Free-form label ("compute", "noc", "dram").
        payload: Arbitrary attached data.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of events keyed by completion time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        """Schedule an event at an absolute time.

        Raises:
            ValueError: On negative timestamps.
        """
        if time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, Event(time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            IndexError: When the queue is empty.
        """
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def drain(self) -> list[Event]:
        """Pop everything, in time order."""
        out = []
        while self._heap:
            out.append(self.pop())
        return out


@dataclass
class Resource:
    """A serially occupied resource (one engine, the NoC, the HBM channel).

    Attributes:
        name: Label for tracing.
        busy_until: Timestamp the resource frees up.
    """

    name: str
    busy_until: float = 0.0

    def occupy(self, start: float, duration: float) -> float:
        """Reserve the resource at the earliest feasible time.

        Args:
            start: Earliest start (dependencies ready).
            duration: Occupancy length in cycles.

        Returns:
            Completion timestamp.
        """
        begin = max(start, self.busy_until)
        self.busy_until = begin + duration
        return self.busy_until
