"""Warm compile sessions: reusable contexts and worker pools.

A cold ``repro optimize`` pays three request-independent costs every
invocation: building the :class:`~repro.pipeline.SearchContext` (graph
fusion, cost-kernel statics, mesh tables), spawning the worker pool, and
warming the memoized engine cost model.  A :class:`CompileSession` keeps
all three alive between requests; :class:`SessionManager` is the LRU pool
of sessions the daemon routes requests through.

Reuse is decision-safe by construction: worker state is exactly the
``(ctx, profile)`` pair (everything request-specific rides in task
payloads — see :mod:`repro.pipeline`), and the memoized cost model
caches pure functions of ``(layer, arch)``, so a warm second search is
bit-identical to a cold one.  The determinism test suite pins this.
"""

from __future__ import annotations

from repro.config import ArchConfig
from repro.framework import AtomicDataflowOptimizer, OptimizationOutcome, OptimizerOptions
from repro.ir.graph import Graph
from repro.obs.metrics import get_registry
from repro.pipeline import (
    ContextCache,
    SearchContext,
    make_search_executor,
)
from repro.resilience.executor import ResilientExecutor


class CompileSession:
    """One warm context plus its executors, reusable across searches.

    A session is bound to one ``(graph, arch, dataflow, batch)`` — the
    same key that identifies its context in the
    :class:`~repro.pipeline.ContextCache`.  Executors are created per
    distinct ``jobs`` count on first use and live until :meth:`close`;
    the session owns their shutdown (StagedSearch never shuts down an
    executor it was handed).
    """

    def __init__(self, graph: Graph, arch: ArchConfig, ctx: SearchContext) -> None:
        self.graph = graph
        self.arch = arch
        self.ctx = ctx
        self.searches_run = 0
        self._executors: dict[int, ResilientExecutor] = {}
        self._closed = False

    def executor(self, jobs: int) -> ResilientExecutor:
        """The warm executor for a ``jobs`` count, spawning on first use."""
        if self._closed:
            raise RuntimeError("session is closed")
        executor = self._executors.get(jobs)
        if executor is None:
            executor = make_search_executor(self.ctx, jobs=jobs)
            self._executors[jobs] = executor
        return executor

    def optimize(
        self, options: OptimizerOptions, strategy_label: str = "AD"
    ) -> OptimizationOutcome:
        """Run one search on the warm context and pool.

        ``options.dataflow`` / ``options.batch`` must match what the
        session was built for (the daemon guarantees this by routing on
        the context key).
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if (options.dataflow, options.batch) != (
            self.ctx.dataflow,
            self.ctx.batch,
        ):
            raise ValueError(
                f"session is warm for dataflow={self.ctx.dataflow!r} "
                f"batch={self.ctx.batch}, request wants "
                f"dataflow={options.dataflow!r} batch={options.batch}"
            )
        optimizer = AtomicDataflowOptimizer(
            self.graph,
            self.arch,
            options,
            context=self.ctx,
            executor=self.executor(options.jobs),
        )
        outcome = optimizer.optimize(strategy_label=strategy_label)
        self.searches_run += 1
        get_registry().counter("session.searches").inc()
        return outcome

    def close(self) -> None:
        """Shut down every pool this session spawned."""
        self._closed = True
        executors, self._executors = self._executors, {}
        for executor in executors.values():
            executor.shutdown()


class SessionManager:
    """LRU pool of warm sessions, sharing one context cache.

    Sessions are keyed by :meth:`ContextCache.key_for` — ``(graph
    fingerprint, arch fingerprint, dataflow, batch)``.  Eviction closes
    the evicted session's pools; its context may survive in the
    (larger) context cache and re-warm a future session cheaply.

    Args:
        capacity: Live sessions kept warm (pools are the scarce
            resource — each holds worker processes).
        context_capacity: Entries in the shared context cache.
    """

    def __init__(self, capacity: int = 4, context_capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.contexts = ContextCache(capacity=context_capacity)
        self._sessions: dict[tuple, CompileSession] = {}
        self._closed = False

    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, graph: Graph, arch: ArchConfig, options: OptimizerOptions) -> CompileSession:
        """A warm session for the request, building one on miss."""
        if self._closed:
            raise RuntimeError("session manager is closed")
        registry = get_registry()
        key = ContextCache.key_for(graph, arch, options.dataflow, options.batch)
        session = self._sessions.pop(key, None)
        if session is not None:
            self._sessions[key] = session  # re-insert: most recently used
            registry.counter("session.hits").inc()
            return session
        registry.counter("session.misses").inc()
        ctx = self.contexts.get(graph, arch, options.dataflow, options.batch)
        session = CompileSession(graph, arch, ctx)
        self._sessions[key] = session
        while len(self._sessions) > self.capacity:
            oldest = next(iter(self._sessions))
            self._sessions.pop(oldest).close()
            registry.counter("session.evictions").inc()
        return session

    def invalidate_arch(self, arch_fp: str) -> int:
        """Close every session (and drop every context) for an arch.

        Returns the number of sessions closed.  The daemon calls this
        when an architecture definition changes under a fingerprint —
        the explicit invalidation hook the warm-reuse contract requires.
        """
        stale = [key for key in self._sessions if key[1] == arch_fp]
        for key in stale:
            self._sessions.pop(key).close()
        self.contexts.invalidate_arch(arch_fp)
        if stale:
            get_registry().counter("session.invalidated").inc(len(stale))
        return len(stale)

    def close(self) -> None:
        """Close every session and drop every context."""
        self._closed = True
        sessions, self._sessions = self._sessions, {}
        for session in sessions.values():
            session.close()
        self.contexts.clear()


__all__ = ["CompileSession", "SessionManager"]
