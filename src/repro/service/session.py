"""Warm compile sessions: reusable contexts and worker pools.

A cold ``repro optimize`` pays three request-independent costs every
invocation: building the :class:`~repro.pipeline.SearchContext` (graph
fusion, cost-kernel statics, mesh tables), spawning the worker pool, and
warming the memoized engine cost model.  A :class:`CompileSession` keeps
all three alive between requests; :class:`SessionManager` is the LRU pool
of sessions the daemon routes requests through.

Reuse is decision-safe by construction: worker state is exactly the
``(ctx, profile)`` pair (everything request-specific rides in task
payloads — see :mod:`repro.pipeline`), and the memoized cost model
caches pure functions of ``(layer, arch)``, so a warm second search is
bit-identical to a cold one.  The determinism test suite pins this.
"""

from __future__ import annotations

import threading

from repro.config import ArchConfig
from repro.framework import AtomicDataflowOptimizer, OptimizationOutcome, OptimizerOptions
from repro.ir.graph import Graph
from repro.obs.metrics import get_registry
from repro.pipeline import (
    ContextCache,
    SearchContext,
    make_search_executor,
)
from repro.resilience.executor import ResilientExecutor


class CompileSession:
    """One warm context plus its executors, reusable across searches.

    A session is bound to one ``(graph, arch, dataflow, batch)`` — the
    same key that identifies its context in the
    :class:`~repro.pipeline.ContextCache`.  Executors are created per
    distinct ``jobs`` count on first use and live until :meth:`close`;
    the session owns their shutdown (StagedSearch never shuts down an
    executor it was handed).
    """

    def __init__(self, graph: Graph, arch: ArchConfig, ctx: SearchContext) -> None:
        self.graph = graph
        self.arch = arch
        self.ctx = ctx
        self.searches_run = 0
        self.busy = False  # owned by SessionManager, mutated under its lock
        self._executors: dict[int, ResilientExecutor] = {}
        self._closed = False

    def executor(self, jobs: int) -> ResilientExecutor:
        """The warm executor for a ``jobs`` count, spawning on first use."""
        if self._closed:
            raise RuntimeError("session is closed")
        executor = self._executors.get(jobs)
        if executor is None:
            executor = make_search_executor(self.ctx, jobs=jobs)
            self._executors[jobs] = executor
        return executor

    def optimize(
        self, options: OptimizerOptions, strategy_label: str = "AD"
    ) -> OptimizationOutcome:
        """Run one search on the warm context and pool.

        ``options.dataflow`` / ``options.batch`` must match what the
        session was built for (the daemon guarantees this by routing on
        the context key).
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if (options.dataflow, options.batch) != (
            self.ctx.dataflow,
            self.ctx.batch,
        ):
            raise ValueError(
                f"session is warm for dataflow={self.ctx.dataflow!r} "
                f"batch={self.ctx.batch}, request wants "
                f"dataflow={options.dataflow!r} batch={options.batch}"
            )
        optimizer = AtomicDataflowOptimizer(
            self.graph,
            self.arch,
            options,
            context=self.ctx,
            executor=self.executor(options.jobs),
        )
        outcome = optimizer.optimize(strategy_label=strategy_label)
        self.searches_run += 1
        get_registry().counter("session.searches").inc()
        return outcome

    def close(self) -> None:
        """Shut down every pool this session spawned."""
        self._closed = True
        executors, self._executors = self._executors, {}
        for executor in executors.values():
            executor.shutdown()


class SessionManager:
    """Thread-safe LRU pool of warm sessions, sharing one context cache.

    Sessions are keyed by :meth:`ContextCache.key_for` — ``(graph
    fingerprint, arch fingerprint, dataflow, batch)``.  Eviction closes
    the evicted session's pools; its context may survive in the
    (larger) context cache and re-warm a future session cheaply.

    Concurrent runners check sessions out with :meth:`acquire` /
    :meth:`release`: a checked-out (busy) session is never handed to a
    second runner and never evicted.  When the warm session for a key is
    busy, acquire builds an *overflow* session for the same context —
    two runners searching the same workload overlap safely — and release
    either promotes it into the warm pool (if the slot freed up) or
    closes it.  :meth:`get` remains for single-threaded callers and
    hands out the warm session without busy-tracking.

    Args:
        capacity: Live sessions kept warm (pools are the scarce
            resource — each holds worker processes).
        context_capacity: Entries in the shared context cache.
    """

    def __init__(self, capacity: int = 4, context_capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.contexts = ContextCache(capacity=context_capacity)
        self._lock = threading.RLock()
        self._sessions: dict[tuple, CompileSession] = {}
        self._loaned: list[CompileSession] = []
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    @staticmethod
    def _key(session: CompileSession) -> tuple:
        return ContextCache.key_for(
            session.graph, session.arch, session.ctx.dataflow, session.ctx.batch
        )

    def _build(
        self, graph: Graph, arch: ArchConfig, options: OptimizerOptions
    ) -> CompileSession:
        ctx = self.contexts.get(graph, arch, options.dataflow, options.batch)
        return CompileSession(graph, arch, ctx)

    def _evict_idle(self) -> None:
        registry = get_registry()
        while len(self._sessions) > self.capacity:
            oldest = next(
                (k for k, s in self._sessions.items() if not s.busy), None
            )
            if oldest is None:
                return  # every warm session is checked out; over-capacity is transient
            self._sessions.pop(oldest).close()
            registry.counter("session.evictions").inc()

    def get(self, graph: Graph, arch: ArchConfig, options: OptimizerOptions) -> CompileSession:
        """A warm session for the request, building one on miss.

        No busy-tracking: single-threaded callers only.  Concurrent
        runners must use :meth:`acquire` / :meth:`release`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("session manager is closed")
            registry = get_registry()
            key = ContextCache.key_for(graph, arch, options.dataflow, options.batch)
            session = self._sessions.pop(key, None)
            if session is not None:
                self._sessions[key] = session  # re-insert: most recently used
                registry.counter("session.hits").inc()
                return session
            registry.counter("session.misses").inc()
            session = self._build(graph, arch, options)
            self._sessions[key] = session
            self._evict_idle()
            return session

    def acquire(
        self, graph: Graph, arch: ArchConfig, options: OptimizerOptions
    ) -> CompileSession:
        """Check out a session for exclusive use by one runner."""
        with self._lock:
            if self._closed:
                raise RuntimeError("session manager is closed")
            registry = get_registry()
            key = ContextCache.key_for(graph, arch, options.dataflow, options.batch)
            session = self._sessions.pop(key, None)
            if session is not None and not session.busy:
                self._sessions[key] = session  # re-insert: most recently used
                session.busy = True
                self._loaned.append(session)
                registry.counter("session.hits").inc()
                return session
            if session is not None:
                self._sessions[key] = session  # warm one is busy: overflow
                registry.counter("session.overflow").inc()
            else:
                registry.counter("session.misses").inc()
            fresh = self._build(graph, arch, options)
            fresh.busy = True
            self._loaned.append(fresh)
            if key not in self._sessions:
                self._sessions[key] = fresh
                self._evict_idle()
            return fresh

    def release(self, session: CompileSession) -> None:
        """Return a checked-out session to the pool (idempotent)."""
        with self._lock:
            session.busy = False
            if session in self._loaned:
                self._loaned.remove(session)
            if self._closed:
                session.close()
                return
            key = self._key(session)
            pooled = self._sessions.get(key)
            if pooled is session:
                self._evict_idle()
                return
            if pooled is None:
                self._sessions[key] = session  # promote the overflow session
                self._evict_idle()
                return
            session.close()  # the key's warm slot is taken; drop the overflow

    def invalidate_arch(self, arch_fp: str) -> int:
        """Close every session (and drop every context) for an arch.

        Returns the number of sessions closed.  The daemon calls this
        when an architecture definition changes under a fingerprint —
        the explicit invalidation hook the warm-reuse contract requires.
        """
        with self._lock:
            stale = [key for key in self._sessions if key[1] == arch_fp]
            for key in stale:
                self._sessions.pop(key).close()
            self.contexts.invalidate_arch(arch_fp)
            if stale:
                get_registry().counter("session.invalidated").inc(len(stale))
            return len(stale)

    def close(self) -> None:
        """Close every session and drop every context (idempotent)."""
        with self._lock:
            self._closed = True
            sessions, self._sessions = self._sessions, {}
            loaned, self._loaned = self._loaned, []
            for session in sessions.values():
                session.close()
            for session in loaned:
                if session not in sessions.values():
                    session.close()
            self.contexts.clear()


__all__ = ["CompileSession", "SessionManager"]
