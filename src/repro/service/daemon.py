"""The ``repro serve`` daemon: job queue, runner, and wire front end.

:class:`ReproService` owns the whole serving state machine:

* submissions check the :class:`~repro.service.store.SolutionStore`
  first — a hit completes instantly with the byte-exact stored
  document, consuming no search capacity;
* misses pass :class:`~repro.service.admission.AdmissionController`
  (bounded queue depth + per-tenant quotas, clean typed backpressure),
  then either *coalesce* onto an identical in-flight fingerprint or
  enqueue a real search;
* one runner thread drains the queue through warm
  :class:`~repro.service.session.CompileSession` objects, so contexts
  and worker pools persist across requests;
* every state transition is journaled
  (:class:`~repro.service.jobs.JobJournal`) *before* it takes effect,
  and every search runs with a per-job candidate checkpoint, so a
  killed daemon restarted on the same state directory resumes
  in-flight jobs and produces identical results.

The wire protocol (:func:`serve`) is line-delimited JSON over a unix
socket: one request object in, one response object out per connection —
``{"op": "submit", ...}`` → ``{"ok": true, ...}`` or ``{"ok": false,
"error": {"code": ..., "message": ...}}``.  No new dependencies; the
stdlib ``socketserver`` does the listening.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
from collections import deque
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.serialize import solution_to_dict
from repro.service.admission import AdmissionController, AdmissionError
from repro.service.jobs import JobJournal, JobRecord, next_job_id
from repro.service.request import CompileRequest
from repro.service.session import SessionManager
from repro.service.store import SolutionStore

_log = get_logger(__name__)

#: Wire protocol version, echoed by ``ping``.
PROTOCOL_VERSION = 1


class ReproService:
    """The serving state machine (transport-agnostic; see :func:`serve`).

    Args:
        state_dir: Durable state root — ``store/`` (solution cache),
            ``jobs.jsonl`` (job journal), ``ck/`` (per-job candidate
            checkpoints).  Restarting on the same directory resumes
            in-flight jobs.
        jobs: Default worker count for searches whose request leaves
            ``options.jobs`` at 1 (a request asking for more keeps it).
        store_capacity_bytes: Solution-store LRU cap (None = unbounded).
        max_queue_depth: Total in-flight job cap.
        default_quota: Per-tenant in-flight cap.
        quotas: Per-tenant overrides.
        session_capacity: Warm sessions kept alive.
    """

    def __init__(
        self,
        state_dir: str | os.PathLike,
        jobs: int = 1,
        store_capacity_bytes: int | None = None,
        max_queue_depth: int = 16,
        default_quota: int = 4,
        quotas: dict[str, int] | None = None,
        session_capacity: int = 4,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "ck").mkdir(exist_ok=True)
        self.default_jobs = jobs
        self.store = SolutionStore(
            self.state_dir / "store", capacity_bytes=store_capacity_bytes
        )
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            default_quota=default_quota,
            quotas=quotas,
        )
        self.sessions = SessionManager(capacity=session_capacity)
        self.journal = JobJournal(self.state_dir / "jobs.jsonl")
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = self.journal.open()
        self._queue: deque[str] = deque()
        self._active: dict[str, str] = {}  # fingerprint -> primary job_id
        self._waiters: dict[str, list[str]] = {}  # primary -> coalesced ids
        self._slots: dict[str, str] = {}  # job_id -> tenant holding a slot
        self._stop = threading.Event()
        self._runner: threading.Thread | None = None
        self._recover()

    # -- restart recovery ---------------------------------------------------

    def _recover(self) -> None:
        """Re-enqueue every non-terminal journaled job.

        Queued and running jobs go back on the queue; each re-runs with
        its candidate checkpoint (``resume=True``), so completed
        candidates are restored, not re-searched.  Coalesced waiters
        re-enqueue as ordinary jobs — by the time the runner reaches
        them their primary has published to the store, so they finish as
        cache hits.  Admission slots are re-claimed best-effort: a job
        admitted before the kill is never dropped for quota reasons.
        """
        pending = sorted(
            (j for j in self._jobs.values() if not j.terminal),
            key=lambda j: j.job_id,
        )
        for job in pending:
            requeued = job.advanced("queued")
            self.journal.record("queued", requeued)
            self._jobs[job.job_id] = requeued
            try:
                self.admission.admit(job.tenant)
                self._slots[job.job_id] = job.tenant
            except AdmissionError:  # pragma: no cover - shrunken quotas
                pass
            self._queue.append(job.job_id)
        if pending:
            _log.info("recovered %d in-flight job(s) from journal", len(pending))
            get_registry().counter("service.recovered").inc(len(pending))

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the runner thread (idempotent)."""
        if self._runner is None or not self._runner.is_alive():
            self._stop.clear()
            self._runner = threading.Thread(
                target=self._run, name="repro-serve-runner", daemon=True
            )
            self._runner.start()

    def stop(self) -> None:
        """Stop the runner after its current job and release resources."""
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        if self._runner is not None:
            self._runner.join()
            self._runner = None
        self.sessions.close()
        self.journal.close()

    # -- the runner ---------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stop.is_set():
                    self._wakeup.wait()
                if self._stop.is_set():
                    return
                job_id = self._queue.popleft()
                job = self._jobs[job_id]
                get_registry().gauge("service.queue_depth").set(len(self._queue))
            if job.terminal:
                continue  # cancelled while queued
            try:
                self._execute(job)
            except BaseException as exc:  # noqa: BLE001 - runner must survive
                _log.error("job %s failed: %s", job.job_id, exc)
                self._finish_failed(job, str(exc) or type(exc).__name__)

    def _execute(self, job: JobRecord) -> None:
        request = CompileRequest.from_dict(job.request)
        fingerprint = job.fingerprint
        tracer = get_tracer()
        # A second store check at dequeue time: an identical job (or a
        # pre-kill incarnation of this one) may have published since
        # submission — recovered coalesced waiters finish here.
        if self.store.get(fingerprint) is not None:
            entry = self.store.info(fingerprint)
            with tracer.span(
                "service.transition", category="service",
                job=job.job_id, to="done", source="cache",
            ):
                self._finish_done(
                    job,
                    source="cache",
                    total_cycles=entry.total_cycles if entry else None,
                    search_seconds=0.0,
                )
            return
        with tracer.span(
            "service.transition", category="service",
            job=job.job_id, to="running",
        ):
            self._transition(job.advanced("running"))
        options = request.options
        if options.jobs == 1 and self.default_jobs > 1:
            options = replace(options, jobs=self.default_jobs)
        options = replace(
            options,
            checkpoint=str(self.state_dir / "ck" / f"{job.job_id}.jsonl"),
            resume=True,
        )
        with tracer.span(
            "service.search", category="service",
            job=job.job_id, workload=job.model, fingerprint=fingerprint,
        ):
            session = self.sessions.get(request.graph, request.arch, options)
            outcome = session.optimize(options)
        doc = solution_to_dict(outcome, request.options.dataflow, include_search=False)
        self.store.put(fingerprint, doc, graph=request.graph, arch=request.arch)
        with tracer.span(
            "service.transition", category="service",
            job=job.job_id, to="done", source="search",
        ):
            self._finish_done(
                job,
                source="search",
                total_cycles=outcome.result.total_cycles,
                search_seconds=outcome.search_seconds,
            )
        get_registry().counter("service.searches").inc()

    # -- transitions (all journal-first) ------------------------------------

    def _transition(self, job: JobRecord) -> JobRecord:
        with self._lock:
            self.journal.record(job.state, job)
            self._jobs[job.job_id] = job
        return job

    def _release(self, job_id: str) -> None:
        tenant = self._slots.pop(job_id, None)
        if tenant is not None:
            self.admission.release(tenant)

    def _finish_done(
        self,
        job: JobRecord,
        source: str,
        total_cycles: int | None,
        search_seconds: float,
    ) -> None:
        waiters: list[str] = []
        with self._lock:
            done = job.advanced(
                "done",
                source=source,
                total_cycles=total_cycles,
                search_seconds=search_seconds,
            )
            self.journal.record("done", done)
            self._jobs[job.job_id] = done
            self._release(job.job_id)
            if self._active.get(job.fingerprint) == job.job_id:
                del self._active[job.fingerprint]
                waiters = self._waiters.pop(job.job_id, [])
            for waiter_id in waiters:
                waiter = self._jobs[waiter_id]
                if waiter.terminal:
                    continue
                finished = waiter.advanced(
                    "done",
                    source="coalesced",
                    total_cycles=total_cycles,
                    search_seconds=0.0,
                )
                self.journal.record("done", finished)
                self._jobs[waiter_id] = finished
                self._release(waiter_id)
            get_registry().counter("service.completed").inc(1 + len(waiters))

    def _finish_failed(self, job: JobRecord, error: str) -> None:
        waiters: list[str] = []
        with self._lock:
            failed = job.advanced("failed", error=error)
            self.journal.record("failed", failed)
            self._jobs[job.job_id] = failed
            self._release(job.job_id)
            if self._active.get(job.fingerprint) == job.job_id:
                del self._active[job.fingerprint]
                waiters = self._waiters.pop(job.job_id, [])
            for waiter_id in waiters:
                waiter = self._jobs[waiter_id]
                if waiter.terminal:
                    continue
                finished = waiter.advanced(
                    "failed", error=f"coalesced onto failed job {job.job_id}: {error}"
                )
                self.journal.record("failed", finished)
                self._jobs[waiter_id] = finished
                self._release(waiter_id)
            get_registry().counter("service.failed").inc(1 + len(waiters))

    # -- the service API (one method per wire op) ---------------------------

    def submit(self, doc: dict) -> dict:
        """Admit one request; returns ``{"job_id", "state", "source"}``.

        Raises:
            ValueError: Malformed request (unknown keys, unknown model).
            AdmissionError: Queue full or tenant over quota.
        """
        try:
            request = CompileRequest.from_dict(doc)
            fingerprint = request.fingerprint
        except KeyError as exc:
            raise ValueError(f"unknown model {exc.args[0]!r}") from exc
        registry = get_registry()
        tracer = get_tracer()
        with tracer.span(
            "service.submit", category="service",
            workload=request.model, tenant=request.tenant,
        ):
            cached = self.store.get(fingerprint)
            with self._wakeup:
                job_id = next_job_id(self._jobs)
                if cached is not None:
                    entry = self.store.info(fingerprint)
                    job = JobRecord(
                        job_id=job_id,
                        fingerprint=fingerprint,
                        model=request.model,
                        tenant=request.tenant,
                        request=request.to_dict(),
                        state="done",
                        source="cache",
                        total_cycles=entry.total_cycles if entry else None,
                        search_seconds=0.0,
                    )
                    self.journal.record("done", job)
                    self._jobs[job_id] = job
                    registry.counter("service.cache_hits").inc()
                    return {"job_id": job_id, "state": "done", "source": "cache"}
                self.admission.admit(request.tenant)  # raises AdmissionError
                primary = self._active.get(fingerprint)
                if primary is not None:
                    job = JobRecord(
                        job_id=job_id,
                        fingerprint=fingerprint,
                        model=request.model,
                        tenant=request.tenant,
                        request=request.to_dict(),
                        state="queued",
                        source="coalesced",
                    )
                    self.journal.record("queued", job)
                    self._jobs[job_id] = job
                    self._slots[job_id] = request.tenant
                    self._waiters.setdefault(primary, []).append(job_id)
                    registry.counter("service.coalesced").inc()
                    return {
                        "job_id": job_id,
                        "state": "queued",
                        "source": "coalesced",
                        "coalesced_with": primary,
                    }
                job = JobRecord(
                    job_id=job_id,
                    fingerprint=fingerprint,
                    model=request.model,
                    tenant=request.tenant,
                    request=request.to_dict(),
                    state="queued",
                    source="search",
                )
                self.journal.record("queued", job)
                self._jobs[job_id] = job
                self._slots[job_id] = request.tenant
                self._active[fingerprint] = job_id
                self._queue.append(job_id)
                registry.counter("service.submitted").inc()
                registry.gauge("service.queue_depth").set(len(self._queue))
                self._wakeup.notify()
                return {"job_id": job_id, "state": "queued", "source": "search"}

    def status(self, job_id: str) -> dict:
        """The job's current record (raises KeyError on unknown id)."""
        with self._lock:
            return self._jobs[job_id].to_dict()

    def result(self, job_id: str) -> dict:
        """The stored solution of a done job, byte-exact.

        The ``solution_json`` field is the stored bytes decoded as
        UTF-8 — clients write it back out verbatim, preserving byte
        identity with the original search's document.
        """
        with self._lock:
            job = self._jobs[job_id]
        if job.state != "done":
            raise ValueError(
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else "")
            )
        payload = self.store.get(job.fingerprint)
        if payload is None:
            raise ValueError(
                f"job {job_id} result was evicted from the store; resubmit"
            )
        return {
            "job_id": job_id,
            "fingerprint": job.fingerprint,
            "total_cycles": job.total_cycles,
            "source": job.source,
            "solution_json": payload.decode("utf-8"),
        }

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued (or coalesced-waiting) job.

        A running job cannot be cancelled — the search is already
        spending its quota slot and will publish a reusable result.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.terminal:
                return {"job_id": job_id, "state": job.state}
            if job.state != "queued":
                raise ValueError(f"job {job_id} is {job.state}; not cancellable")
            cancelled = job.advanced("cancelled")
            self.journal.record("cancelled", cancelled)
            self._jobs[job_id] = cancelled
            self._release(job_id)
            if self._active.get(job.fingerprint) == job_id:
                # Cancelling a primary promotes nothing: waiters fail
                # over to their own store check when the runner next
                # sees them — but they are not queued, so fail them.
                del self._active[job.fingerprint]
                for waiter_id in self._waiters.pop(job_id, []):
                    waiter = self._jobs[waiter_id]
                    if waiter.terminal:
                        continue
                    finished = waiter.advanced(
                        "failed",
                        error=f"coalesced onto cancelled job {job_id}",
                    )
                    self.journal.record("failed", finished)
                    self._jobs[waiter_id] = finished
                    self._release(waiter_id)
            get_registry().counter("service.cancelled").inc()
            return {"job_id": job_id, "state": "cancelled"}

    def jobs(self) -> list[dict]:
        """Every journaled job, in id order."""
        with self._lock:
            return [
                self._jobs[job_id].to_dict() for job_id in sorted(self._jobs)
            ]

    def stats(self) -> dict:
        """Operational snapshot: queue, store, admission, sessions."""
        with self._lock:
            queue_depth = len(self._queue)
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        counters = {
            name: value
            for name, value in get_registry().snapshot().counters.items()
            if name.split(".")[0]
            in ("service", "store", "admission", "session", "context_cache")
        }
        return {
            "protocol": PROTOCOL_VERSION,
            "queue_depth": queue_depth,
            "jobs_by_state": states,
            "store": {
                "entries": len(self.store),
                "bytes": self.store.total_bytes,
                "capacity_bytes": self.store.capacity_bytes,
            },
            "admission": self.admission.snapshot(),
            "sessions": len(self.sessions),
            "counters": counters,
        }


# ---------------------------------------------------------------------------
# The unix-socket wire front end
# ---------------------------------------------------------------------------

_OPS = frozenset(
    {"ping", "submit", "status", "result", "cancel", "jobs", "stats", "shutdown"}
)


def _handle_op(service: ReproService, request: dict) -> dict:
    """Dispatch one wire request; exceptions become error responses."""
    op = request.get("op")
    if op not in _OPS:
        return _error("bad-request", f"unknown op {op!r}")
    try:
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL_VERSION}
        if op == "submit":
            return {"ok": True, **service.submit(request.get("request", {}))}
        if op == "status":
            return {"ok": True, "job": service.status(_job_id(request))}
        if op == "result":
            return {"ok": True, **service.result(_job_id(request))}
        if op == "cancel":
            return {"ok": True, **service.cancel(_job_id(request))}
        if op == "jobs":
            return {"ok": True, "jobs": service.jobs()}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        return {"ok": True, "stopping": True}  # shutdown: caller stops server
    except AdmissionError as exc:
        return _error(exc.code, str(exc))
    except KeyError as exc:
        return _error("not-found", f"unknown job {exc.args[0]!r}")
    except (TypeError, ValueError) as exc:
        return _error("bad-request", str(exc))


def _job_id(request: dict) -> str:
    job_id = request.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ValueError("request needs a 'job_id' string")
    return job_id


def _error(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


def serve(service: ReproService, socket_path: str | os.PathLike) -> None:
    """Run the wire front end until a ``shutdown`` op (blocking).

    One connection = one request line = one response line; the client
    reconnects per call, which keeps the handler trivially stateless.
    """
    socket_path = os.fspath(socket_path)
    if os.path.exists(socket_path):
        os.unlink(socket_path)  # stale socket from a killed daemon

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            line = self.rfile.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request is not a JSON object")
            except ValueError as exc:
                response = _error("bad-request", f"unparseable request: {exc}")
            else:
                response = _handle_op(service, request)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("stopping"):
                threading.Thread(target=server.shutdown, daemon=True).start()

    server = _Server(socket_path, Handler)
    service.start()
    _log.info("serving on %s (state %s)", socket_path, service.state_dir)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.stop()
        if os.path.exists(socket_path):
            os.unlink(socket_path)


__all__ = ["PROTOCOL_VERSION", "ReproService", "serve"]
