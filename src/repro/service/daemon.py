"""The ``repro serve`` daemon: job queue, runner pool, and wire front end.

:class:`ReproService` owns the whole serving state machine:

* submissions check the :class:`~repro.service.store.SolutionStore`
  first — a hit completes instantly with the byte-exact stored
  document, consuming no search capacity;
* misses pass :class:`~repro.service.admission.AdmissionController`
  (bounded queue depth + per-tenant quotas, clean typed backpressure),
  then either *coalesce* onto an identical in-flight fingerprint or
  enqueue a real search;
* a supervised pool of ``runners`` threads drains the queue through
  warm :class:`~repro.service.session.CompileSession` objects.  A
  runner owns its job through a **lease** (journaled ``runner_id`` /
  ``attempt`` / monotone ``lease_seq``); the supervisor reclaims leases
  whose runner died or stalled and requeues the job — it resumes from
  its per-job candidate checkpoint, retries with deterministic backoff,
  and becomes a first-class ``failed`` record once the attempt cap is
  hit.  Completion is lease-guarded, so a superseded runner's late
  result is discarded: a job is never lost and never *completes* twice,
  and coalesced waiters ride across reclaims untouched (they key on the
  primary's job id, which reclaims never change);
* every state transition is journaled
  (:class:`~repro.service.jobs.JobJournal`) *before* it takes effect,
  and every search runs with a per-job candidate checkpoint, so a
  killed daemon restarted on the same state directory resumes
  in-flight jobs and produces identical results.

The wire protocol (:func:`serve`) is line-delimited JSON over a unix
socket: one request object in, one response object out per connection —
``{"op": "submit", ...}`` → ``{"ok": true, ...}`` or ``{"ok": false,
"error": {"code": ..., "message": ...}}``.  ``health`` reports runner
liveness, live leases, lease statistics, and a mergeable
:mod:`repro.obs` metrics snapshot; ``drain`` (or SIGTERM) gracefully
stops the daemon — no new admissions, running jobs journaled back to
``queued`` if they cannot finish in time, nothing lost.  No new
dependencies; the stdlib ``socketserver`` does the listening.

**Observability plane** (protocol v3): every submission mints a
deterministic ``trace_id`` (sha256 of job id + fingerprint — no clocks,
no randomness) that is journaled on the :class:`JobRecord`, echoed on
every wire response, written to the append-only ``events.jsonl`` event
log, and used to stitch a per-job span tree: a synthesized
``service.job`` root covers submit→completion, with
``service.queue_wait`` and ``service.lease`` children and — when
tracing is enabled — every ``search.*``/``sa.*`` span the runner's
capture collected, reparented under the lease span.  Latency SLO
histograms (``service.latency.{queue_wait,lease_hold,compile_wall,
e2e,cache_hit}``) and per-tenant counters feed the ``health``/``stats``
ops and the HTTP ``/metrics`` exporter
(:mod:`repro.service.metrics_http`).  None of it feeds back into
search decisions: traced + scraped serving is byte-identical to
untraced serving.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry, summarize_histograms
from repro.obs.tracer import SpanRecord, get_tracer
from repro.resilience.faults import InjectedRunnerDeath, ServiceFaultPlan
from repro.resilience.timing import Deadline, backoff_for
from repro.serialize import solution_to_dict
from repro.service.admission import AdmissionController, AdmissionError
from repro.service.client import socket_path_problem
from repro.service.events import TRACE_FORMAT, TRACE_VERSION, EventLog
from repro.service.jobs import JobIdAllocator, JobJournal, JobRecord
from repro.service.request import CompileRequest
from repro.service.session import SessionManager
from repro.service.store import SolutionStore

_log = get_logger(__name__)

#: Wire protocol version, echoed by ``ping``.  v3 added request tracing
#: (``trace_id`` on every response, the ``trace`` op) and the service
#: latency histograms surfaced by ``health``/``stats``.
PROTOCOL_VERSION = 3

#: Histogram name prefix of the service SLO latencies (seconds).
LATENCY_PREFIX = "service.latency."


@dataclass
class _Lease:
    """In-memory view of one live lease (journal holds the durable half)."""

    job_id: str
    runner_id: str
    lease_seq: int
    attempt: int
    beat_seq: int
    deadline: Deadline = field(repr=False)


@dataclass
class _JobTrace:
    """Per-job trace bookkeeping: latency clocks + collected spans.

    ``*_s`` fields are ``perf_counter`` readings for the SLO histograms;
    ``*_us`` fields are tracer wall-anchor timestamps for synthesized
    spans (0.0 when tracing was off at submit).  ``root_id`` is the
    pre-allocated span id of the ``service.job`` root, so children
    synthesized before completion can already name their parent.
    """

    trace_id: str
    tenant: str
    root_id: int
    submit_s: float
    submit_us: float
    enqueue_s: float = 0.0
    enqueue_us: float = 0.0
    lease_s: float = 0.0
    lease_us: float = 0.0
    lease_open: bool = False
    spans: list[SpanRecord] = field(default_factory=list)


class ReproService:
    """The serving state machine (transport-agnostic; see :func:`serve`).

    Args:
        state_dir: Durable state root — ``store/`` (solution cache),
            ``jobs.jsonl`` (job journal), ``ck/`` (per-job candidate
            checkpoints).  Restarting on the same directory resumes
            in-flight jobs.
        jobs: Default worker count for searches whose request leaves
            ``options.jobs`` at 1 (a request asking for more keeps it).
        store_capacity_bytes: Solution-store LRU cap (None = unbounded).
        max_queue_depth: Total in-flight job cap.
        default_quota: Per-tenant in-flight cap.
        quotas: Per-tenant overrides.
        session_capacity: Warm sessions kept alive.
        runners: Runner threads draining the queue concurrently.
        max_job_attempts: Leases a job may consume before a failure is
            final (crash-loop bound; journaled in the header for AD806).
        retry_backoff_s: Base of the deterministic exponential backoff
            a runner sleeps before re-running a reclaimed/retried job.
        heartbeat_timeout_s: A lease whose runner has not heartbeat for
            this long is considered stalled and reclaimed (None
            disables stall detection; dead-thread detection stays on).
        supervise_interval_s: Supervisor scan period.
        faults: Optional service-level chaos plan (tests/tools only).
    """

    def __init__(
        self,
        state_dir: str | os.PathLike,
        jobs: int = 1,
        store_capacity_bytes: int | None = None,
        max_queue_depth: int = 16,
        default_quota: int = 4,
        quotas: dict[str, int] | None = None,
        session_capacity: int = 4,
        runners: int = 1,
        max_job_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        heartbeat_timeout_s: float | None = 600.0,
        supervise_interval_s: float = 0.2,
        faults: ServiceFaultPlan | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if runners < 1:
            raise ValueError("runners must be >= 1")
        if max_job_attempts < 1:
            raise ValueError("max_job_attempts must be >= 1")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "ck").mkdir(exist_ok=True)
        self.default_jobs = jobs
        self.runners_target = runners
        self.max_job_attempts = max_job_attempts
        self.retry_backoff_s = retry_backoff_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.supervise_interval_s = supervise_interval_s
        self.faults = faults
        self.store = SolutionStore(
            self.state_dir / "store", capacity_bytes=store_capacity_bytes
        )
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            default_quota=default_quota,
            quotas=quotas,
        )
        self.sessions = SessionManager(capacity=session_capacity)
        self.journal = JobJournal(self.state_dir / "jobs.jsonl", faults=faults)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = self.journal.open(
            header_extras={"max_attempts": max_job_attempts}
        )
        self._ids = JobIdAllocator(self._jobs)
        self._queue: deque[str] = deque()
        self._active: dict[str, str] = {}  # fingerprint -> primary job_id
        self._waiters: dict[str, list[str]] = {}  # primary -> coalesced ids
        self._slots: dict[str, str] = {}  # job_id -> tenant holding a slot
        self._leases: dict[str, _Lease] = {}  # job_id -> live lease
        self._lease_seq = max(
            (j.lease_seq for j in self._jobs.values()), default=0
        )
        self._stop = threading.Event()
        self._draining = False
        self._closed = False
        self._drain_lock = threading.Lock()
        self._runner_threads: dict[str, threading.Thread] = {}
        self._runner_seq = 0
        self._supervisor: threading.Thread | None = None
        (self.state_dir / "traces").mkdir(exist_ok=True)
        self._traces: dict[str, _JobTrace] = {}
        # The event log opens (and reconciles against the journal as it
        # was on disk) before recovery requeues anything — a crash
        # window between a journal append and its event append, or a
        # torn-events fault, heals here, restoring AD807 agreement.
        self.events = EventLog(self.state_dir / "events.jsonl", faults=faults)
        self.events.open()
        recovered_events = self.events.reconcile(self.state_dir / "jobs.jsonl")
        if recovered_events:
            _log.info("reconciled %d missing event(s)", recovered_events)
            get_registry().counter("service.events.recovered").inc(
                recovered_events
            )
        self._recover()

    # -- restart recovery ---------------------------------------------------

    def _recover(self) -> None:
        """Re-enqueue every non-terminal journaled job.

        Queued and running jobs go back on the queue; each re-runs with
        its candidate checkpoint (``resume=True``), so completed
        candidates are restored, not re-searched.  A job that was
        ``running`` keeps its attempt count — its next lease is attempt
        N+1, so crash-looping jobs still hit the retry cap.  Coalesced
        waiters re-enqueue as ordinary jobs — by the time a runner
        reaches them their primary has published to the store, so they
        finish as cache hits.  Admission slots are re-claimed
        best-effort: a job admitted before the kill is never dropped for
        quota reasons.
        """
        pending = sorted(
            (j for j in self._jobs.values() if not j.terminal),
            key=lambda j: j.job_id,
        )
        for job in pending:
            requeued = job.advanced("queued", runner_id=None)
            self.journal.record("queued", requeued)
            self._jobs[job.job_id] = requeued
            self._event("requeue", requeued, reason="restart")
            self._trace_begin(requeued, time.perf_counter())
            try:
                self.admission.admit(job.tenant)
                self._slots[job.job_id] = job.tenant
            except AdmissionError:  # pragma: no cover - shrunken quotas
                pass
            self._queue.append(job.job_id)
        if pending:
            _log.info("recovered %d in-flight job(s) from journal", len(pending))
            get_registry().counter("service.recovered").inc(len(pending))

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the runner pool and its supervisor (idempotent)."""
        with self._wakeup:
            if self._closed:
                raise RuntimeError("service is closed")
            while len(self._runner_threads) < self.runners_target:
                self._spawn_runner_locked()
            if self._supervisor is None or not self._supervisor.is_alive():
                self._supervisor = threading.Thread(
                    target=self._supervise,
                    name="repro-serve-supervisor",
                    daemon=True,
                )
                self._supervisor.start()

    def _spawn_runner_locked(self) -> str:
        self._runner_seq += 1
        name = f"runner-{self._runner_seq}"
        thread = threading.Thread(
            target=self._runner_loop,
            args=(name,),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        self._runner_threads[name] = thread
        thread.start()
        return name

    def stop(self) -> None:
        """Stop every runner after its current job; release resources."""
        if self._closed:
            return
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        for thread in list(self._runner_threads.values()):
            thread.join()
        self._runner_threads.clear()
        if self._supervisor is not None:
            self._supervisor.join()
            self._supervisor = None
        self._closed = True
        self.sessions.close()
        self.journal.close()
        self.events.close()

    def drain(self, timeout_s: float | None = 60.0) -> dict:
        """Graceful shutdown: stop admitting, checkpoint, journal, exit.

        The SIGTERM path.  New submissions are rejected with code
        ``draining``; runners finish (or are given ``timeout_s`` to
        finish) their current jobs.  Any job still running at the
        deadline is journaled back to ``queued`` — its candidate
        checkpoint holds the completed work, so a daemon restarted on
        the same state directory resumes it without loss, and the
        wedged runner's eventual result is discarded by the lease
        guard.  Queued jobs simply stay journaled as ``queued``.

        Returns a summary: ``{"requeued": [...], "queued": N}``.
        """
        with self._drain_lock:
            if self._closed:
                return {"draining": True, "requeued": [], "queued": 0}
            with self._wakeup:
                self._draining = True
                self._wakeup.notify_all()
            deadline = Deadline(timeout_s)
            for thread in list(self._runner_threads.values()):
                thread.join(deadline.remaining_s())
            requeued: list[str] = []
            with self._wakeup:
                for job_id in sorted(self._leases):
                    lease = self._leases.pop(job_id)
                    job = self._jobs[job_id]
                    record = job.advanced("queued", runner_id=None)
                    self.journal.record("queued", record)
                    self._jobs[job_id] = record
                    self._event("requeue", record, reason="drain")
                    jt = self._traces.get(job_id)
                    if jt is not None:
                        self._close_lease_trace_locked(jt)
                    requeued.append(job_id)
                    _log.warning(
                        "drain: requeued in-flight job %s (runner %s still busy)",
                        job_id,
                        lease.runner_id,
                    )
                queued = len(self._queue)
            self._stop.set()
            with self._wakeup:
                self._wakeup.notify_all()
            if self._supervisor is not None:
                self._supervisor.join()
                self._supervisor = None
            self._runner_threads.clear()  # anything left is wedged; it dies with the process
            self._closed = True
            self.sessions.close()
            self.journal.close()
            self.events.close()
            registry = get_registry()
            registry.counter("service.drained").inc()
            if requeued:
                registry.counter("service.drain.requeued").inc(len(requeued))
            _log.info(
                "drained: %d requeued, %d left queued", len(requeued), queued
            )
            return {"draining": True, "requeued": requeued, "queued": queued}

    # -- the runner pool ----------------------------------------------------

    def _runner_loop(self, name: str) -> None:
        # InjectedRunnerDeath can surface from _execute (kill-runner) or
        # from the lease append itself (torn-journal): either way the
        # runner dies with no cleanup and the supervisor reclaims.  A
        # return, not a re-raise, kills the thread just the same without
        # tripping threading.excepthook in the chaos harness.
        try:
            while True:
                with self._wakeup:
                    while (
                        not self._queue
                        and not self._stop.is_set()
                        and not self._draining
                    ):
                        self._wakeup.wait()
                    if self._stop.is_set() or self._draining:
                        return
                    job_id = self._queue.popleft()
                    get_registry().gauge("service.queue_depth").set(
                        len(self._queue)
                    )
                    job = self._jobs[job_id]
                    if job.terminal:
                        continue  # cancelled while queued
                    job = self._lease_locked(job, name)
                delay = backoff_for(
                    job.attempt - 1, base_s=self.retry_backoff_s
                )
                if delay > 0:
                    time.sleep(delay)  # deterministic retry backoff ladder
                try:
                    self._execute(job)
                except InjectedRunnerDeath:
                    raise  # crashed runner: no cleanup, no retry accounting
                except BaseException as exc:  # noqa: BLE001 - runner must survive
                    _log.error(
                        "job %s attempt %d failed: %s",
                        job.job_id,
                        job.attempt,
                        exc,
                    )
                    # Keep whatever spans the failed attempt captured —
                    # they stitch into the job trace either way.
                    self._retry_or_fail(
                        job,
                        str(exc) or type(exc).__name__,
                        spans=get_tracer().stop_capture(),
                    )
        except InjectedRunnerDeath:
            return

    def _lease_locked(self, job: JobRecord, runner_id: str) -> JobRecord:
        """Take ownership of a queued job (journal-first, under the lock)."""
        self._lease_seq += 1
        seq = self._lease_seq
        leased = job.advanced(
            "running", runner_id=runner_id, lease_seq=seq, attempt=job.attempt + 1
        )
        self.journal.record("running", leased)
        self._jobs[job.job_id] = leased
        self._leases[job.job_id] = _Lease(
            job_id=job.job_id,
            runner_id=runner_id,
            lease_seq=seq,
            attempt=leased.attempt,
            beat_seq=seq,
            deadline=Deadline(self.heartbeat_timeout_s),
        )
        get_registry().counter("service.lease.issued").inc()
        jt = self._traces.get(job.job_id)
        if jt is not None:
            now_s = time.perf_counter()
            self._observe_latency("queue_wait", now_s - jt.enqueue_s)
            jt.lease_s = now_s
            jt.lease_open = True
            tracer = get_tracer()
            if tracer.enabled and jt.root_id:
                now_us = tracer.now_us()
                jt.spans.append(
                    SpanRecord(
                        name="service.queue_wait",
                        category="service",
                        start_us=jt.enqueue_us,
                        duration_us=now_us - jt.enqueue_us,
                        pid=os.getpid(),
                        tid=threading.get_ident(),
                        span_id=tracer.allocate_id(),
                        parent_id=jt.root_id,
                        args=(
                            ("attempt", leased.attempt),
                            ("runner", runner_id),
                            ("trace", jt.trace_id),
                        ),
                    )
                )
                jt.lease_us = now_us
        self._event(
            "lease",
            leased,
            runner=runner_id,
            attempt=leased.attempt,
            lease_seq=seq,
        )
        return leased

    def _beat(self, job_id: str) -> None:
        """Heartbeat the job's lease (in memory; leases journal only on
        transitions — a beat draws from the same monotone clock)."""
        with self._lock:
            lease = self._leases.get(job_id)
            if lease is None:
                return
            self._lease_seq += 1
            lease.beat_seq = self._lease_seq
            lease.deadline.reset()

    def _execute(self, job: JobRecord) -> None:
        request = CompileRequest.from_dict(job.request)
        fingerprint = job.fingerprint
        tracer = get_tracer()
        # Capture this thread's spans for the job trace: everything the
        # search records (and everything its workers ship back through
        # absorb) lands in a per-job buffer instead of the process-wide
        # one, so a long-lived daemon never accumulates unattributed
        # spans.
        if tracer.enabled:
            tracer.start_capture()
        # A second store check at dequeue time: an identical job (or a
        # pre-kill incarnation of this one) may have published since
        # submission — recovered coalesced waiters finish here.
        if self.store.get(fingerprint) is not None:
            entry = self.store.info(fingerprint)
            self._finish_done(
                job,
                source="cache",
                total_cycles=entry.total_cycles if entry else None,
                search_seconds=0.0,
                spans=tracer.stop_capture(),
            )
            return
        self._beat(job.job_id)
        if self.faults is not None:
            if self.faults.take("kill-runner", attempt=job.attempt) is not None:
                raise InjectedRunnerDeath(
                    f"injected runner death @ {job.job_id} attempt {job.attempt}"
                )
            if self.faults.take("sigterm", attempt=job.attempt) is not None:
                threading.Thread(
                    target=self.drain, name="repro-serve-sigterm", daemon=True
                ).start()
        options = request.options
        if options.jobs == 1 and self.default_jobs > 1:
            options = replace(options, jobs=self.default_jobs)
        options = replace(
            options,
            checkpoint=str(self.state_dir / "ck" / f"{job.job_id}.jsonl"),
            resume=True,
        )
        with tracer.span(
            "service.search", category="service",
            job=job.job_id, workload=job.model, fingerprint=fingerprint,
        ):
            session = self.sessions.acquire(request.graph, request.arch, options)
            try:
                outcome = session.optimize(options)
            finally:
                self.sessions.release(session)
        self._beat(job.job_id)
        doc = solution_to_dict(outcome, request.options.dataflow, include_search=False)
        self.store.put(fingerprint, doc, graph=request.graph, arch=request.arch)
        if self.faults is not None:
            if self.faults.take("corrupt-store", attempt=job.attempt) is not None:
                self._corrupt_store_object(fingerprint)
        self._finish_done(
            job,
            source="search",
            total_cycles=outcome.result.total_cycles,
            search_seconds=outcome.search_seconds,
            spans=tracer.stop_capture(),
        )
        get_registry().counter("service.searches").inc()

    def _corrupt_store_object(self, fingerprint: str) -> None:
        """Chaos helper: flip one byte of a just-published store object.

        The store's read-path digest check must turn this into a miss
        (recompute), never a wrong answer.
        """
        path = self.store.objects / f"{fingerprint}.json"
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        _log.warning("injected store corruption @ %s", fingerprint)

    # -- the supervisor -----------------------------------------------------

    def _supervise(self) -> None:
        """Reap dead runners, reclaim their (and stalled) leases, respawn."""
        while not self._stop.wait(self.supervise_interval_s):
            with self._wakeup:
                if self.journal.closed or self.events.closed:
                    # Torn journal or torn event log: the daemon is
                    # dead; a restart truncates and recovers.
                    return
                if self._draining:
                    continue  # drain() owns shutdown bookkeeping
                dead = [
                    name
                    for name, thread in self._runner_threads.items()
                    if not thread.is_alive()
                ]
                for name in dead:
                    del self._runner_threads[name]
                    held = [
                        job_id
                        for job_id, lease in self._leases.items()
                        if lease.runner_id == name
                    ]
                    for job_id in held:
                        self._reclaim_locked(job_id, f"runner {name} died")
                    self._spawn_runner_locked()
                    get_registry().counter("service.runner.respawned").inc()
                for job_id, lease in list(self._leases.items()):
                    if not lease.deadline.expired:
                        continue
                    if lease.runner_id not in self._runner_threads:
                        continue  # already reaped above
                    # The runner is wedged mid-search: abandon its
                    # thread (the lease guard discards whatever it
                    # eventually produces) and hand the job to a
                    # replacement.
                    self._runner_threads.pop(lease.runner_id)
                    self._reclaim_locked(
                        job_id,
                        f"lease heartbeat expired (runner {lease.runner_id} stalled)",
                    )
                    get_registry().counter("service.lease.stalled").inc()
                    self._spawn_runner_locked()
                    get_registry().counter("service.runner.respawned").inc()

    def _reclaim_locked(self, job_id: str, reason: str) -> None:
        """Take a lease back from a dead/stalled runner (under the lock)."""
        self._leases.pop(job_id)
        job = self._jobs[job_id]
        get_registry().counter("service.lease.reclaimed").inc()
        _log.warning("reclaiming job %s: %s", job_id, reason)
        jt = self._traces.get(job_id)
        if jt is not None:
            # The dead runner's captured spans died with its thread;
            # close the lease window so lease_hold is still observed.
            self._close_lease_trace_locked(jt)
        if job.attempt >= self.max_job_attempts:
            self._finish_failed_locked(
                job,
                f"{reason}; retries exhausted "
                f"(attempt {job.attempt}/{self.max_job_attempts})",
            )
            return
        self._requeue_locked(job, kind="reclaim", reason=reason)

    def _requeue_locked(
        self, job: JobRecord, kind: str = "requeue", reason: str | None = None
    ) -> None:
        requeued = job.advanced("queued", runner_id=None)
        self.journal.record("queued", requeued)
        self._jobs[job.job_id] = requeued
        self._queue.append(job.job_id)
        self._event(kind, requeued, reason=reason)
        jt = self._traces.get(job.job_id)
        if jt is not None:
            jt.enqueue_s = time.perf_counter()
            tracer = get_tracer()
            if tracer.enabled and jt.root_id:
                jt.enqueue_us = tracer.now_us()
        registry = get_registry()
        registry.counter("service.lease.retries").inc()
        registry.gauge("service.queue_depth").set(len(self._queue))
        self._wakeup.notify()

    def _retry_or_fail(
        self, job: JobRecord, error: str, spans: Iterable[SpanRecord] = ()
    ) -> None:
        """A leased job's attempt failed: requeue below the cap, else fail."""
        with self._wakeup:
            if self._lease_superseded_locked(job):
                return
            self._leases.pop(job.job_id)
            jt = self._traces.get(job.job_id)
            if jt is not None:
                attach = self._close_lease_trace_locked(jt)
                self._stitch_spans_locked(jt, spans, attach)
            if job.attempt >= self.max_job_attempts:
                self._finish_failed_locked(
                    job,
                    f"{error} (attempt {job.attempt}/{self.max_job_attempts})",
                )
                return
            self._requeue_locked(job)

    def _lease_superseded_locked(self, job: JobRecord) -> bool:
        """Whether ``job``'s lease was reclaimed out from under its runner.

        True means some other incarnation owns (or already finished)
        the job — the caller must discard its result, preserving
        exactly-once completion.
        """
        lease = self._leases.get(job.job_id)
        if lease is None or lease.lease_seq != job.lease_seq:
            get_registry().counter("service.lease.superseded").inc()
            _log.warning(
                "discarding superseded result for %s (lease %d, runner %s)",
                job.job_id,
                job.lease_seq,
                job.runner_id,
            )
            return True
        return False

    # -- tracing, events, and SLO latency plumbing --------------------------

    def _mint_trace(self, job_id: str, fingerprint: str) -> str:
        """A deterministic trace id: no clocks, no randomness, and not
        part of the request fingerprint (cache keys stay shared across
        resubmissions; the trace id is unique per *job*)."""
        digest = hashlib.sha256(f"{job_id}:{fingerprint}".encode("utf-8"))
        return f"tr-{digest.hexdigest()[:16]}"

    def _event(self, kind: str, job: JobRecord, **fields: Any) -> None:
        """Append one event, correlated to the job's trace.

        A no-op once the event log is torn/closed: the daemon is
        already dead at that point and restart reconciliation rebuilds
        whatever went unrecorded.
        """
        if self.events.closed:
            return
        self.events.append(kind, job.job_id, trace_id=job.trace_id, **fields)

    def _observe_latency(self, name: str, seconds: float) -> None:
        get_registry().histogram(f"{LATENCY_PREFIX}{name}").observe(seconds)

    def _tenant_counter(self, tenant: str, what: str, n: int = 1) -> None:
        get_registry().counter(f"service.tenant.{tenant}.{what}").inc(n)

    def _trace_begin(self, job: JobRecord, submit_s: float) -> _JobTrace:
        """Start per-job trace bookkeeping (at submit or restart requeue)."""
        tracer = get_tracer()
        submit_us = tracer.now_us() if tracer.enabled else 0.0
        jt = _JobTrace(
            trace_id=job.trace_id or "",
            tenant=job.tenant,
            root_id=tracer.allocate_id() if tracer.enabled else 0,
            submit_s=submit_s,
            submit_us=submit_us,
            enqueue_s=time.perf_counter(),
            enqueue_us=submit_us,
        )
        self._traces[job.job_id] = jt
        return jt

    def _close_lease_trace_locked(self, jt: _JobTrace) -> int:
        """Observe lease-hold latency and synthesize the lease span.

        Returns the span id later spans should attach to: the lease
        span when one was synthesized, else the root (0 = tracing off).
        """
        if not jt.lease_open:
            return jt.root_id
        jt.lease_open = False
        self._observe_latency("lease_hold", time.perf_counter() - jt.lease_s)
        tracer = get_tracer()
        if not (tracer.enabled and jt.root_id):
            return jt.root_id
        now_us = tracer.now_us()
        lease_id = tracer.allocate_id()
        jt.spans.append(
            SpanRecord(
                name="service.lease",
                category="service",
                start_us=jt.lease_us,
                duration_us=now_us - jt.lease_us,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=lease_id,
                parent_id=jt.root_id,
                args=(("trace", jt.trace_id),),
            )
        )
        return lease_id

    def _stitch_spans_locked(
        self, jt: _JobTrace, spans: Iterable[SpanRecord], attach_id: int
    ) -> None:
        """Fold a runner capture into the job trace.

        Top-level spans from *this* process (parentless, or pointing at
        a parent the capture never saw) are reparented under
        ``attach_id`` (the lease span); worker-process spans keep their
        own parent chains — AD808 checks them by window containment.
        """
        spans = list(spans)
        if not spans:
            return
        pid = os.getpid()
        known = {s.span_id for s in spans if s.pid == pid}
        for span in spans:
            if attach_id and span.pid == pid and (
                span.parent_id == 0 or span.parent_id not in known
            ):
                span = replace(span, parent_id=attach_id)
            jt.spans.append(span)

    def _synthesize_root_locked(self, jt: _JobTrace, job: JobRecord) -> None:
        """Record the ``service.job`` root span (submit → completion)."""
        tracer = get_tracer()
        if not (tracer.enabled and jt.root_id):
            return
        end_us = tracer.now_us()
        jt.spans.append(
            SpanRecord(
                name="service.job",
                category="service",
                start_us=jt.submit_us,
                duration_us=end_us - jt.submit_us,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=jt.root_id,
                parent_id=0,
                args=tuple(
                    sorted(
                        {
                            "job": job.job_id,
                            "trace": jt.trace_id,
                            "tenant": job.tenant,
                            "workload": job.model,
                            "state": job.state,
                            "source": job.source,
                        }.items()
                    )
                ),
            )
        )

    def _persist_trace_locked(self, jt: _JobTrace, job: JobRecord) -> None:
        """Write ``traces/<job_id>.json`` (atomic replace; AD808 input)."""
        if not jt.spans:
            return
        path = self.state_dir / "traces" / f"{job.job_id}.json"
        doc = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "job_id": job.job_id,
            "trace_id": jt.trace_id,
            "root_pid": os.getpid(),
            "spans": [span.to_dict() for span in jt.spans],
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def _complete_trace_locked(
        self, job: JobRecord, spans: Iterable[SpanRecord] = ()
    ) -> None:
        """Completion-side trace work shared by done/failed/cancelled."""
        jt = self._traces.get(job.job_id)
        if jt is None:
            return
        attach = self._close_lease_trace_locked(jt)
        self._stitch_spans_locked(jt, spans, attach)
        self._observe_latency("e2e", time.perf_counter() - jt.submit_s)
        self._tenant_counter(job.tenant, "completed")
        self._synthesize_root_locked(jt, job)
        self._persist_trace_locked(jt, job)

    # -- transitions (all journal-first) ------------------------------------

    def _release(self, job_id: str) -> None:
        tenant = self._slots.pop(job_id, None)
        if tenant is not None:
            self.admission.release(tenant)

    def _finish_done(
        self,
        job: JobRecord,
        source: str,
        total_cycles: int | None,
        search_seconds: float,
        spans: Iterable[SpanRecord] = (),
    ) -> None:
        waiters: list[str] = []
        with self._lock:
            if self._lease_superseded_locked(job):
                return
            self._leases.pop(job.job_id)
            done = job.advanced(
                "done",
                source=source,
                total_cycles=total_cycles,
                search_seconds=search_seconds,
            )
            self.journal.record("done", done)
            self._jobs[job.job_id] = done
            self._release(job.job_id)
            self._event("complete", done, state="done", source=source)
            if source == "search":
                self._observe_latency("compile_wall", search_seconds)
            self._complete_trace_locked(done, spans)
            if self._active.get(job.fingerprint) == job.job_id:
                del self._active[job.fingerprint]
                waiters = self._waiters.pop(job.job_id, [])
            for waiter_id in waiters:
                waiter = self._jobs[waiter_id]
                if waiter.terminal:
                    continue
                finished = waiter.advanced(
                    "done",
                    source="coalesced",
                    total_cycles=total_cycles,
                    search_seconds=0.0,
                )
                self.journal.record("done", finished)
                self._jobs[waiter_id] = finished
                self._release(waiter_id)
                self._event(
                    "complete", finished, state="done", source="coalesced"
                )
                self._complete_trace_locked(finished)
            get_registry().counter("service.completed").inc(1 + len(waiters))

    def _finish_failed_locked(self, job: JobRecord, error: str) -> None:
        waiters: list[str] = []
        failed = job.advanced("failed", error=error)
        self.journal.record("failed", failed)
        self._jobs[job.job_id] = failed
        self._release(job.job_id)
        self._event("complete", failed, state="failed")
        self._complete_trace_locked(failed)
        if self._active.get(job.fingerprint) == job.job_id:
            del self._active[job.fingerprint]
            waiters = self._waiters.pop(job.job_id, [])
        for waiter_id in waiters:
            waiter = self._jobs[waiter_id]
            if waiter.terminal:
                continue
            finished = waiter.advanced(
                "failed", error=f"coalesced onto failed job {job.job_id}: {error}"
            )
            self.journal.record("failed", finished)
            self._jobs[waiter_id] = finished
            self._release(waiter_id)
            self._event("complete", finished, state="failed")
            self._complete_trace_locked(finished)
        get_registry().counter("service.failed").inc(1 + len(waiters))

    # -- the service API (one method per wire op) ---------------------------

    def submit(self, doc: dict) -> dict:
        """Admit one request; returns ``{"job_id", "state", "source",
        "trace_id"}``.

        Raises:
            ValueError: Malformed request (unknown keys, unknown model).
            AdmissionError: Queue full, tenant over quota, or draining.
        """
        submit_s = time.perf_counter()
        with self._lock:
            if self._draining or self._closed:
                raise AdmissionError(
                    "draining", "daemon is draining; resubmit to its successor"
                )
        try:
            request = CompileRequest.from_dict(doc)
            fingerprint = request.fingerprint
        except KeyError as exc:
            raise ValueError(f"unknown model {exc.args[0]!r}") from exc
        registry = get_registry()
        cached = self.store.get(fingerprint)
        with self._wakeup:
            if self._draining or self._closed:
                raise AdmissionError(
                    "draining",
                    "daemon is draining; resubmit to its successor",
                )
            job_id = self._ids.next()
            trace_id = self._mint_trace(job_id, fingerprint)
            self._tenant_counter(request.tenant, "submitted")
            if cached is not None:
                entry = self.store.info(fingerprint)
                job = JobRecord(
                    job_id=job_id,
                    fingerprint=fingerprint,
                    model=request.model,
                    tenant=request.tenant,
                    request=request.to_dict(),
                    state="done",
                    source="cache",
                    total_cycles=entry.total_cycles if entry else None,
                    search_seconds=0.0,
                    trace_id=trace_id,
                )
                self.journal.record("done", job)
                self._jobs[job_id] = job
                jt = self._trace_begin(job, submit_s)
                self._event("submit", job, tenant=job.tenant, source="cache")
                self._event("complete", job, state="done", source="cache")
                self._observe_latency(
                    "cache_hit", time.perf_counter() - submit_s
                )
                self._observe_latency("e2e", time.perf_counter() - submit_s)
                self._tenant_counter(job.tenant, "completed")
                self._synthesize_root_locked(jt, job)
                self._persist_trace_locked(jt, job)
                registry.counter("service.cache_hits").inc()
                return {
                    "job_id": job_id,
                    "state": "done",
                    "source": "cache",
                    "trace_id": trace_id,
                }
            self.admission.admit(request.tenant)  # raises AdmissionError
            primary = self._active.get(fingerprint)
            if primary is not None:
                job = JobRecord(
                    job_id=job_id,
                    fingerprint=fingerprint,
                    model=request.model,
                    tenant=request.tenant,
                    request=request.to_dict(),
                    state="queued",
                    source="coalesced",
                    trace_id=trace_id,
                )
                self.journal.record("queued", job)
                self._jobs[job_id] = job
                self._slots[job_id] = request.tenant
                self._waiters.setdefault(primary, []).append(job_id)
                self._trace_begin(job, submit_s)
                self._event(
                    "submit",
                    job,
                    tenant=job.tenant,
                    source="coalesced",
                    coalesced_with=primary,
                )
                registry.counter("service.coalesced").inc()
                return {
                    "job_id": job_id,
                    "state": "queued",
                    "source": "coalesced",
                    "coalesced_with": primary,
                    "trace_id": trace_id,
                }
            job = JobRecord(
                job_id=job_id,
                fingerprint=fingerprint,
                model=request.model,
                tenant=request.tenant,
                request=request.to_dict(),
                state="queued",
                source="search",
                trace_id=trace_id,
            )
            self.journal.record("queued", job)
            self._jobs[job_id] = job
            self._slots[job_id] = request.tenant
            self._active[fingerprint] = job_id
            self._queue.append(job_id)
            self._trace_begin(job, submit_s)
            self._event("submit", job, tenant=job.tenant, source="search")
            registry.counter("service.submitted").inc()
            registry.gauge("service.queue_depth").set(len(self._queue))
            self._wakeup.notify()
            return {
                "job_id": job_id,
                "state": "queued",
                "source": "search",
                "trace_id": trace_id,
            }

    def status(self, job_id: str) -> dict:
        """The job's current record (raises KeyError on unknown id)."""
        with self._lock:
            return self._jobs[job_id].to_dict()

    def result(self, job_id: str) -> dict:
        """The stored solution of a done job, byte-exact.

        The ``solution_json`` field is the stored bytes decoded as
        UTF-8 — clients write it back out verbatim, preserving byte
        identity with the original search's document.
        """
        with self._lock:
            job = self._jobs[job_id]
        if job.state != "done":
            raise ValueError(
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else "")
            )
        payload = self.store.get(job.fingerprint)
        if payload is None:
            raise ValueError(
                f"job {job_id} result was evicted from the store; resubmit"
            )
        return {
            "job_id": job_id,
            "fingerprint": job.fingerprint,
            "total_cycles": job.total_cycles,
            "source": job.source,
            "trace_id": job.trace_id,
            "solution_json": payload.decode("utf-8"),
        }

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued (or coalesced-waiting) job.

        A running job cannot be cancelled — the search is already
        spending its quota slot and will publish a reusable result.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.terminal:
                return {"job_id": job_id, "state": job.state}
            if job.state != "queued":
                raise ValueError(f"job {job_id} is {job.state}; not cancellable")
            cancelled = job.advanced("cancelled")
            self.journal.record("cancelled", cancelled)
            self._jobs[job_id] = cancelled
            self._release(job_id)
            self._event("complete", cancelled, state="cancelled")
            self._complete_trace_locked(cancelled)
            if self._active.get(job.fingerprint) == job_id:
                # Cancelling a primary promotes nothing: waiters fail
                # over to their own store check when the runner next
                # sees them — but they are not queued, so fail them.
                del self._active[job.fingerprint]
                for waiter_id in self._waiters.pop(job_id, []):
                    waiter = self._jobs[waiter_id]
                    if waiter.terminal:
                        continue
                    finished = waiter.advanced(
                        "failed",
                        error=f"coalesced onto cancelled job {job_id}",
                    )
                    self.journal.record("failed", finished)
                    self._jobs[waiter_id] = finished
                    self._release(waiter_id)
                    self._event("complete", finished, state="failed")
                    self._complete_trace_locked(finished)
            get_registry().counter("service.cancelled").inc()
            return {"job_id": job_id, "state": "cancelled"}

    def jobs(self) -> list[dict]:
        """Every journaled job, in id order."""
        with self._lock:
            return [
                self._jobs[job_id].to_dict() for job_id in sorted(self._jobs)
            ]

    def health(self) -> dict:
        """Liveness + lease snapshot (the ``health`` wire op).

        The ``metrics`` field is a full mergeable
        :class:`repro.obs.metrics.MetricsSnapshot` document — fleets
        merge health responses across daemons with
        ``MetricsSnapshot.merge``.
        """
        with self._lock:
            job_by_runner = {
                lease.runner_id: job_id
                for job_id, lease in self._leases.items()
            }
            runners = [
                {
                    "runner": name,
                    "alive": thread.is_alive(),
                    "job": job_by_runner.get(name),
                }
                for name, thread in sorted(self._runner_threads.items())
            ]
            leases = [
                {
                    "job_id": lease.job_id,
                    "runner_id": lease.runner_id,
                    "lease_seq": lease.lease_seq,
                    "attempt": lease.attempt,
                    "beat_seq": lease.beat_seq,
                }
                for _, lease in sorted(self._leases.items())
            ]
            draining = self._draining
            queue_depth = len(self._queue)
        snapshot = get_registry().snapshot()
        lease_stats = {
            stat: snapshot.counters.get(f"service.lease.{stat}", 0)
            for stat in (
                "issued", "reclaimed", "retries", "superseded", "stalled"
            )
        }
        return {
            "protocol": PROTOCOL_VERSION,
            "draining": draining,
            "runners": runners,
            "runners_target": self.runners_target,
            "max_job_attempts": self.max_job_attempts,
            "queue_depth": queue_depth,
            "leases": leases,
            "lease_stats": lease_stats,
            "latency": summarize_histograms(
                snapshot.histograms, prefix=LATENCY_PREFIX
            ),
            "metrics": snapshot.to_dict(),
        }

    def stats(self) -> dict:
        """Operational snapshot: queue, store, admission, sessions."""
        with self._lock:
            queue_depth = len(self._queue)
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            runners_alive = sum(
                1 for t in self._runner_threads.values() if t.is_alive()
            )
            draining = self._draining
        snapshot = get_registry().snapshot()
        counters = {
            name: value
            for name, value in snapshot.counters.items()
            if name.split(".")[0]
            in ("service", "store", "admission", "session", "context_cache")
        }
        return {
            "protocol": PROTOCOL_VERSION,
            "queue_depth": queue_depth,
            "jobs_by_state": states,
            "runners": {"target": self.runners_target, "alive": runners_alive},
            "draining": draining,
            "store": {
                "entries": len(self.store),
                "bytes": self.store.total_bytes,
                "capacity_bytes": self.store.capacity_bytes,
            },
            "admission": self.admission.snapshot(),
            "sessions": len(self.sessions),
            "counters": counters,
            "latency": summarize_histograms(
                snapshot.histograms, prefix=LATENCY_PREFIX
            ),
        }

    def jobs_summary(self) -> dict:
        """Queue/lease summary for the HTTP ``/jobs`` endpoint."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            leases = [
                {
                    "job_id": lease.job_id,
                    "runner_id": lease.runner_id,
                    "lease_seq": lease.lease_seq,
                    "attempt": lease.attempt,
                }
                for _, lease in sorted(self._leases.items())
            ]
            return {
                "protocol": PROTOCOL_VERSION,
                "queue_depth": len(self._queue),
                "jobs_by_state": states,
                "leases": leases,
                "draining": self._draining,
            }

    def trace(self, job_id: str) -> dict:
        """The job's stitched span tree (the ``trace`` wire op).

        In-memory spans win while the daemon that ran the job is alive;
        after a restart the persisted ``traces/<job_id>.json`` document
        serves the same tree.  An untraced job returns an empty span
        list (the trace id is still real).

        Raises:
            KeyError: Unknown job id.
        """
        with self._lock:
            job = self._jobs[job_id]
            jt = self._traces.get(job_id)
            if jt is not None and jt.spans:
                return {
                    "job_id": job_id,
                    "trace_id": job.trace_id,
                    "root_pid": os.getpid(),
                    "spans": [span.to_dict() for span in jt.spans],
                }
            trace_id = job.trace_id
        path = self.state_dir / "traces" / f"{job_id}.json"
        if path.exists():
            doc = json.loads(path.read_text(encoding="utf-8"))
            return {
                "job_id": job_id,
                "trace_id": doc.get("trace_id") or trace_id,
                "root_pid": doc.get("root_pid"),
                "spans": doc.get("spans", []),
            }
        return {
            "job_id": job_id,
            "trace_id": trace_id,
            "root_pid": None,
            "spans": [],
        }


# ---------------------------------------------------------------------------
# The unix-socket wire front end
# ---------------------------------------------------------------------------

_OPS = frozenset(
    {
        "ping",
        "submit",
        "status",
        "result",
        "cancel",
        "jobs",
        "stats",
        "health",
        "trace",
        "drain",
        "shutdown",
    }
)


def _handle_op(service: ReproService, request: dict) -> dict:
    """Dispatch one wire request; exceptions become error responses."""
    op = request.get("op")
    if op not in _OPS:
        return _error("bad-request", f"unknown op {op!r}")
    try:
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL_VERSION}
        if op == "submit":
            return {"ok": True, **service.submit(request.get("request", {}))}
        if op == "status":
            return {"ok": True, "job": service.status(_job_id(request))}
        if op == "result":
            return {"ok": True, **service.result(_job_id(request))}
        if op == "cancel":
            return {"ok": True, **service.cancel(_job_id(request))}
        if op == "jobs":
            return {"ok": True, "jobs": service.jobs()}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "health":
            return {"ok": True, "health": service.health()}
        if op == "trace":
            return {"ok": True, **service.trace(_job_id(request))}
        if op == "drain":
            timeout_s = request.get("timeout_s", 60.0)
            if timeout_s is not None and not isinstance(timeout_s, (int, float)):
                raise ValueError("timeout_s must be a number or null")
            summary = service.drain(timeout_s)
            return {"ok": True, **summary, "stopping": True}
        return {"ok": True, "stopping": True}  # shutdown: caller stops server
    except AdmissionError as exc:
        return _error(exc.code, str(exc))
    except KeyError as exc:
        return _error("not-found", f"unknown job {exc.args[0]!r}")
    except (TypeError, ValueError) as exc:
        return _error("bad-request", str(exc))


def _job_id(request: dict) -> str:
    job_id = request.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ValueError("request needs a 'job_id' string")
    return job_id


def _error(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


def serve(
    service: ReproService,
    socket_path: str | os.PathLike,
    drain_timeout_s: float | None = 60.0,
    metrics_port: int | None = None,
) -> None:
    """Run the wire front end until ``shutdown``/``drain``/SIGTERM (blocking).

    One connection = one request line = one response line; the client
    reconnects per call, which keeps the handler trivially stateless.
    When running on the main thread, SIGTERM triggers a graceful drain
    (stop admitting, journal in-flight jobs, exit) bounded by
    ``drain_timeout_s``.

    ``metrics_port`` (``repro serve --metrics-port``) additionally
    starts the read-only HTTP exporter
    (:class:`repro.service.metrics_http.MetricsHTTPServer`) on
    ``127.0.0.1:<port>`` — ``/metrics`` (Prometheus), ``/healthz``,
    ``/jobs``.

    Raises:
        ValueError: ``socket_path`` exceeds the platform ``sun_path``
            limit (checked up front — binding would fail cryptically).
    """
    socket_path = os.fspath(socket_path)
    problem = socket_path_problem(socket_path)
    if problem is not None:
        raise ValueError(problem)
    if os.path.exists(socket_path):
        os.unlink(socket_path)  # stale socket from a killed daemon

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            line = self.rfile.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request is not a JSON object")
            except ValueError as exc:
                request = {}
                response = _error("bad-request", f"unparseable request: {exc}")
            else:
                response = _handle_op(service, request)
            if service.faults is not None:
                dropped = service.faults.take("drop-socket", op=request.get("op"))
                if dropped is not None:
                    _log.warning(
                        "injected socket drop @ op=%s", request.get("op")
                    )
                    return  # close the connection without a response line
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("stopping"):
                threading.Thread(target=server.shutdown, daemon=True).start()

    server = _Server(socket_path, Handler)

    def _graceful() -> None:
        service.drain(drain_timeout_s)
        server.shutdown()

    def _on_sigterm(signum: int, frame: Any) -> None:
        _log.info("SIGTERM: draining")
        threading.Thread(
            target=_graceful, name="repro-serve-sigterm", daemon=True
        ).start()

    previous_handler: Any = None
    on_main_thread = threading.current_thread() is threading.main_thread()
    if on_main_thread:
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    service.start()
    exporter = None
    if metrics_port is not None:
        from repro.service.metrics_http import MetricsHTTPServer

        exporter = MetricsHTTPServer(service, port=metrics_port)
        exporter.start()
        _log.info("metrics exporter on http://127.0.0.1:%d", exporter.port)
    _log.info("serving on %s (state %s)", socket_path, service.state_dir)
    try:
        server.serve_forever()
    finally:
        if exporter is not None:
            exporter.stop()
        if on_main_thread and previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.server_close()
        service.stop()
        if os.path.exists(socket_path):
            os.unlink(socket_path)


__all__ = ["LATENCY_PREFIX", "PROTOCOL_VERSION", "ReproService", "serve"]
