"""Read-only HTTP observability exporter for the compile service.

``repro serve --metrics-port N`` runs this next to the Unix-socket wire
front end: a stdlib :class:`http.server.ThreadingHTTPServer` on
``127.0.0.1`` whose three endpoints expose daemon state without any
ability to mutate it:

* ``GET /metrics`` — the live metrics registry rendered in Prometheus
  text exposition format (version 0.0.4) via
  :func:`repro.obs.prom.render_prometheus`;
* ``GET /healthz`` — :meth:`ReproService.health` as JSON (the same
  document ``repro jobs --health`` prints);
* ``GET /jobs`` — :meth:`ReproService.jobs_summary` as JSON: queue
  depth, per-state job counts, and active leases.

Every handler reads a consistent snapshot under the owning lock
(registry lock for ``/metrics``, service lock for the JSON endpoints),
so scraping concurrently with job completion never observes a
half-merged histogram — the regression test hammers exactly that.

Zero dependencies beyond the standard library; GETs only (anything
else is 405, unknown paths 404).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.prom import render_prometheus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.daemon import ReproService

_log = get_logger("service.metrics_http")

#: Content type mandated by the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHTTPServer:
    """The ``/metrics`` + ``/healthz`` + ``/jobs`` exporter thread.

    Usage::

        exporter = MetricsHTTPServer(service, port=0)  # 0 = ephemeral
        exporter.start()
        ...  # scrape http://127.0.0.1:{exporter.port}/metrics
        exporter.stop()

    Binding happens in ``__init__`` so :attr:`port` is always the real
    bound port — tests pass ``port=0`` and read it back.
    """

    def __init__(
        self,
        service: "ReproService",
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.service = service
        handler = _make_handler(service)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The actually bound TCP port (resolves ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("exporter already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()


def _make_handler(service: "ReproService") -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        # Scrapes are high-frequency; route their access log to debug.
        def log_message(self, format: str, *args: Any) -> None:
            _log.debug("%s %s", self.address_string(), format % args)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    body = render_prometheus(get_registry().snapshot())
                    self._reply(200, PROM_CONTENT_TYPE, body)
                elif path == "/healthz":
                    self._reply_json(200, service.health())
                elif path == "/jobs":
                    self._reply_json(200, service.jobs_summary())
                else:
                    self._reply_json(404, {"error": f"no such path {path!r}"})
            except Exception as exc:  # never kill the exporter thread
                _log.warning("exporter error on %s: %s", path, exc)
                try:
                    self._reply_json(500, {"error": str(exc)})
                except OSError:
                    pass  # client hung up mid-reply

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            self._reply_json(405, {"error": "read-only exporter"})

        do_PUT = do_POST
        do_DELETE = do_POST

        def _reply_json(self, status: int, obj: dict[str, Any]) -> None:
            self._reply(
                status,
                "application/json; charset=utf-8",
                json.dumps(obj, sort_keys=True) + "\n",
            )

        def _reply(self, status: int, content_type: str, body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

    return Handler


__all__ = ["PROM_CONTENT_TYPE", "MetricsHTTPServer"]
