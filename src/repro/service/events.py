"""Structured service event log + per-job trace document formats.

The daemon appends one JSON line to ``events.jsonl`` for every
externally meaningful thing that happens to a job — ``submit``,
``lease``, ``requeue``/``reclaim``, ``complete`` — each carrying the
job's ``trace_id``, a strictly increasing ``seq``, and kind-specific
fields (tenant, runner, attempt, reason...).  The log follows the same
journal discipline as :class:`~repro.service.jobs.JobJournal`: a header
line, flush + fsync per append, and a torn final line truncated on
reopen.

The log is *derived* observability data; the job journal stays the
source of truth.  Their agreement is a checkable invariant (AD807 in
:mod:`repro.analysis.service_rules`): the per-job event-kind sequence
must equal the sequence implied by the journal's state transitions.
:func:`expected_events` computes that implied sequence, and
:meth:`EventLog.reconcile` repairs the log on restart — a daemon killed
between a journal append and the matching event append (or by an
injected ``torn-events`` fault) reopens the log, truncates the torn
tail, and appends the missing events flagged ``"recovered": true`` —
so a restarted daemon is always AD807-clean.

This module also pins the on-disk format of per-job trace documents
(``traces/<job_id>.json``), validated by AD808.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Mapping

from repro.resilience.faults import InjectedRunnerDeath, ServiceFaultPlan

#: Format tag in the event-log header.
EVENTS_FORMAT = "atomic-dataflow-service-events"
EVENTS_VERSION = 1

#: Format tag of a persisted per-job trace document.
TRACE_FORMAT = "atomic-dataflow-job-trace"
TRACE_VERSION = 1

#: Every event kind the daemon emits, in rough lifecycle order.
EVENT_KINDS = ("submit", "lease", "requeue", "reclaim", "complete")

#: Kinds that mean "the job went back to the queue" — a supervisor
#: reclaim and an ordinary requeue (retry, drain, restart) are the same
#: transition in the job journal, so AD807 matches them as one class.
REQUEUE_KINDS = frozenset({"requeue", "reclaim"})


class EventLogError(ValueError):
    """The event log on disk cannot be used."""


def event_class(kind: str) -> str:
    """The journal-agreement class of an event kind (see AD807)."""
    return "requeue" if kind in REQUEUE_KINDS else kind


class EventLog:
    """Append-only JSONL log of service events (journal discipline).

    Usage::

        log = EventLog(path)
        events = log.open()                   # replayed whole lines
        log.append("submit", "job-000001", trace_id="tr-...", tenant="a")
        log.close()

    ``faults`` arms the ``torn-events`` chaos fault: one append writes
    only a prefix of its line and the log closes — the appending thread
    dies with :class:`~repro.resilience.faults.InjectedRunnerDeath`,
    and a reopen on the same path must truncate the torn tail.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        faults: ServiceFaultPlan | None = None,
    ) -> None:
        self.path = os.fspath(path)
        self.faults = faults
        self.header: dict[str, Any] = {}
        self._fh: io.TextIOBase | None = None
        self._seq = 0
        self._events: list[dict[str, Any]] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True when the log cannot accept appends (never opened,
        explicitly closed, or killed by an injected torn write)."""
        return self._fh is None

    def open(
        self, header_extras: Mapping[str, Any] | None = None
    ) -> list[dict[str, Any]]:
        """Open for appending; return every replayed event.

        An existing log has its torn final line (if any) truncated and
        the ``seq`` counter resumed past the highest replayed value.
        """
        fresh = not os.path.exists(self.path)
        if not fresh:
            self._load()
            if self._keep_bytes is not None:
                with open(self.path, "r+b") as raw:
                    raw.truncate(self._keep_bytes)
        self._fh = open(self.path, "a" if not fresh else "w", encoding="utf-8")
        if fresh:
            self.header = {"format": EVENTS_FORMAT, "version": EVENTS_VERSION}
            for key, value in sorted((header_extras or {}).items()):
                self.header.setdefault(key, value)
            self._write_line_text(json.dumps(self.header, sort_keys=True))
        return list(self._events)

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    # -- appends -----------------------------------------------------------

    def append(
        self,
        kind: str,
        job_id: str,
        trace_id: str | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Durably append one event; returns the written record."""
        if self._fh is None:
            raise RuntimeError("event log is not open")
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        self._seq += 1
        event: dict[str, Any] = {
            "seq": self._seq,
            "kind": kind,
            "job_id": job_id,
            "trace_id": trace_id,
        }
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        line = json.dumps(event, sort_keys=True)
        if self.faults is not None and self.faults.take("torn-events") is not None:
            fh, self._fh = self._fh, None  # the log dies with the write
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            fh.close()
            raise InjectedRunnerDeath(
                f"injected torn event append @ {kind} {job_id}"
            )
        self._write_line_text(line)
        self._events.append(event)
        return event

    def _write_line_text(self, line: str) -> None:
        assert self._fh is not None
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- replay ------------------------------------------------------------

    def _load(self) -> None:
        self._keep_bytes: int | None = None
        header, events, keep_bytes = _read_event_lines(self.path)
        self.header = header
        self._events = events
        self._keep_bytes = keep_bytes
        self._seq = max((int(e.get("seq", 0)) for e in events), default=0)

    # -- restart reconciliation --------------------------------------------

    def reconcile(self, journal_path: str | os.PathLike) -> int:
        """Append events the job journal implies but the log is missing.

        For every job whose actual event-kind sequence is a strict
        prefix (class-wise) of the journal-implied one, the missing
        suffix is appended with ``"recovered": true``.  A log that
        *diverges* from the journal (not a prefix) is left alone —
        that is corruption for AD807 to flag, not a crash window to
        repair.  Returns the number of events appended.
        """
        if self._fh is None:
            raise RuntimeError("event log is not open")
        expected = expected_events(journal_path)
        actual: dict[str, list[dict[str, Any]]] = {}
        for event in self._events:
            actual.setdefault(str(event.get("job_id")), []).append(event)
        appended = 0
        for job_id in sorted(expected):
            exp = expected[job_id]
            act = actual.get(job_id, [])
            if len(act) >= len(exp):
                continue
            prefix_ok = all(
                event_class(str(a.get("kind"))) == e["kind"]
                for a, e in zip(act, exp)
            )
            if not prefix_ok:
                continue
            for entry in exp[len(act):]:
                self.append(
                    entry["kind"],
                    job_id,
                    trace_id=entry.get("trace_id"),
                    state=entry.get("state"),
                    recovered=True,
                )
                appended += 1
        return appended


def read_events(
    path: str | os.PathLike,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read an event log: ``(header, events)``, torn tail tolerated.

    Raises:
        EventLogError: Missing/alien header or a corrupt non-final line.
    """
    header, events, _ = _read_event_lines(path)
    return header, events


def _read_event_lines(
    path: str | os.PathLike,
) -> tuple[dict[str, Any], list[dict[str, Any]], int | None]:
    path = os.fspath(path)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise EventLogError(f"{path}: empty event log")
    header = _parse_line(path, lines[0], line_no=1, final=False)
    if header is None or header.get("format") != EVENTS_FORMAT:
        raise EventLogError(f"{path}: not a {EVENTS_FORMAT} log")
    if header.get("version") != EVENTS_VERSION:
        raise EventLogError(
            f"{path}: unsupported event log version "
            f"{header.get('version')!r} (expected {EVENTS_VERSION})"
        )
    events: list[dict[str, Any]] = []
    keep_bytes: int | None = None
    last = len(lines) - 1
    for i, line in enumerate(lines[1:], start=1):
        obj = _parse_line(path, line, line_no=i + 1, final=i == last)
        if obj is None:
            # Torn final write of a killed daemon: compute the byte
            # offset of the last whole line so open() can truncate.
            keep = text
            if keep.endswith("\n"):
                keep = keep[:-1]
            keep = keep[: len(keep) - len(lines[last])]
            keep_bytes = len(keep.encode("utf-8"))
            continue
        events.append(obj)
    return header, events, keep_bytes


def _parse_line(
    path: str, line: str, line_no: int, final: bool
) -> dict[str, Any] | None:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict):
        return obj
    if final:
        return None
    raise EventLogError(
        f"{path}:{line_no}: not a JSON object — corrupt event log"
    )


def expected_events(
    journal_path: str | os.PathLike,
) -> dict[str, list[dict[str, Any]]]:
    """The per-job event sequence a job journal implies (AD807's oracle).

    Walks every journal line in order and maps state transitions to
    event-kind classes:

    * a job's first record in state ``queued`` → ``submit``;
    * a first record already ``done`` (store hit at submit) →
      ``submit`` then ``complete``;
    * a later ``queued`` record → ``requeue`` (reclaim, retry, drain,
      or restart — one class, see :func:`event_class`);
    * a ``running`` record → ``lease``;
    * a later terminal record → ``complete``.

    Returns ``{job_id: [{"kind", "state", "trace_id"}, ...]}``.  A torn
    final journal line is skipped (its event was never emitted either —
    the daemon appends journal-first).  Journal headers/versions are
    not validated here; that is AD802's job.
    """
    journal_path = os.fspath(journal_path)
    with open(journal_path, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    expected: dict[str, list[dict[str, Any]]] = {}
    last = len(lines) - 1
    for i, line in enumerate(lines[1:], start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if i == last:
                continue  # torn tail: no event was emitted for it
            raise EventLogError(
                f"{journal_path}:{i + 1}: corrupt job journal line"
            ) from None
        job = obj.get("job", {}) if isinstance(obj, dict) else {}
        job_id = job.get("job_id")
        state = job.get("state")
        if not isinstance(job_id, str) or state is None:
            continue
        entry = {
            "state": state,
            "trace_id": job.get("trace_id"),
        }
        seen = expected.setdefault(job_id, [])
        if not seen:
            seen.append({"kind": "submit", **entry})
            if state in ("done", "failed", "cancelled"):
                seen.append({"kind": "complete", **entry})
            continue
        if state == "queued":
            seen.append({"kind": "requeue", **entry})
        elif state == "running":
            seen.append({"kind": "lease", **entry})
        else:
            seen.append({"kind": "complete", **entry})
    return expected


__all__ = [
    "EVENTS_FORMAT",
    "EVENTS_VERSION",
    "EVENT_KINDS",
    "REQUEUE_KINDS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "EventLog",
    "EventLogError",
    "event_class",
    "expected_events",
    "read_events",
]
