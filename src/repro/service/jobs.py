"""Durable job state: records, states, leases, and the JSONL job journal.

Every job state transition is appended to one JSONL journal before it
takes effect in memory, so a killed daemon replays the journal on
restart and resumes exactly the jobs that were queued or running.  The
format mirrors :mod:`repro.resilience.checkpoint`: a header line, one
JSON object per event, flush + fsync per append, and a torn final line
(the write the kill interrupted) dropped silently.

Ownership of a running job is a **lease**: the runner that picks a job
up journals a ``running`` event carrying its ``runner_id``, the job's
``attempt`` number (1-based, bumped per lease), and a ``lease_seq``
drawn from one monotone service-wide clock.  The supervisor reclaims
leases whose runner died or stalled by journaling the job back to
``queued`` (same attempt, no runner) — so the journal is a complete
audit trail of who owned what, in what order, validated by the AD804-806
rules in :mod:`repro.analysis.service_rules`.

Job ids are allocated sequentially (``job-000001``...) by a
:class:`JobIdAllocator` seeded from the highest id in the journal — no
clocks, no randomness — so a restarted daemon never reissues an id and
concurrent submissions never collide.
"""

from __future__ import annotations

import io
import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.resilience.faults import InjectedRunnerDeath, ServiceFaultPlan

#: Format tag in the job-journal header; bump the version on any
#: record-shape change.
JOB_FORMAT = "atomic-dataflow-job-journal"
JOB_VERSION = 3

#: Journal versions :meth:`JobJournal.open` still replays (version-1
#: records lack the lease fields, which default to "never leased";
#: version-2 records lack ``trace_id``, which defaults to None).
_READABLE_VERSIONS = (1, 2, JOB_VERSION)

#: Every legal job state, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_RECORD_KEYS = frozenset(
    {
        "job_id",
        "fingerprint",
        "model",
        "tenant",
        "request",
        "state",
        "source",
        "error",
        "total_cycles",
        "search_seconds",
        "lease_seq",
        "attempt",
        "runner_id",
        "trace_id",
    }
)


class JobJournalError(ValueError):
    """The job journal on disk cannot be used."""


@dataclass(frozen=True)
class JobRecord:
    """One job's durable state.

    Attributes:
        job_id: Sequentially allocated id (``job-%06d``).
        fingerprint: Request fingerprint (store / coalescing key).
        model: Model-zoo name, denormalized for listings.
        tenant: Submitting tenant, for quota accounting on replay.
        request: The full serialized :class:`CompileRequest`, so a
            restarted daemon can re-run the job without the client.
        state: One of :data:`JOB_STATES`.
        source: How the result was (or will be) produced — ``search``
            for a real search, ``cache`` for a store hit at submit time,
            ``coalesced`` for a waiter on another job's search.
        error: Failure description when ``state == "failed"``.
        total_cycles: Solution cost once done.
        search_seconds: Wall seconds the search took (0.0 for hits).
        lease_seq: Monotone service-wide sequence of the job's current
            (or last) lease; 0 = never leased.  Strictly increasing
            across every ``running`` event in a journal (AD804).
        attempt: How many leases this job has held (1-based on the
            first ``running`` event; 0 = never leased).  Bounded by the
            service's retry cap (AD806).
        runner_id: Runner holding the live lease.  Cleared (None) when
            a reclaim/drain journals the job back to ``queued``; kept
            on terminal records as the runner that finished the job.
        trace_id: Request trace id minted at submit time (journal v3);
            deterministic (derived from the job id and fingerprint, no
            clocks or randomness), carried on every wire response and
            into the per-job span tree.  None on pre-v3 records.
    """

    job_id: str
    fingerprint: str
    model: str
    tenant: str
    request: dict = field(default_factory=dict)
    state: str = "queued"
    source: str = "search"
    error: str | None = None
    total_cycles: int | None = None
    search_seconds: float = 0.0
    lease_seq: int = 0
    attempt: int = 0
    runner_id: str | None = None
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}")
        if self.source not in ("search", "cache", "coalesced"):
            raise ValueError(f"unknown job source {self.source!r}")
        if self.lease_seq < 0:
            raise ValueError("lease_seq must be >= 0")
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "model": self.model,
            "tenant": self.tenant,
            "request": self.request,
            "state": self.state,
            "source": self.source,
            "error": self.error,
            "total_cycles": self.total_cycles,
            "search_seconds": self.search_seconds,
            "lease_seq": self.lease_seq,
            "attempt": self.attempt,
            "runner_id": self.runner_id,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobRecord":
        unknown = sorted(set(doc) - _RECORD_KEYS)
        if unknown:
            raise ValueError(f"unknown job record key(s): {', '.join(unknown)}")
        missing = [k for k in ("job_id", "fingerprint", "model", "tenant") if k not in doc]
        if missing:
            raise ValueError(f"job record missing key(s): {', '.join(missing)}")
        return cls(**dict(doc))

    def advanced(self, state: str, **changes: Any) -> "JobRecord":
        """A copy in ``state`` with ``changes`` applied."""
        return replace(self, state=state, **changes)


def next_job_id(existing: Mapping[str, JobRecord] | None = None) -> str:
    """The next sequential job id given already-journaled jobs.

    Stateless helper for one-shot callers; the daemon allocates through
    a :class:`JobIdAllocator`, which is collision-safe under concurrent
    submissions (this function recomputes from the mapping every call,
    so two unsynchronized callers can draw the same id).
    """
    highest = 0
    for job_id in existing or ():
        try:
            highest = max(highest, int(job_id.rsplit("-", 1)[1]))
        except (IndexError, ValueError):
            continue
    return f"job-{highest + 1:06d}"


class JobIdAllocator:
    """Atomic sequential job-id allocator (``job-%06d``).

    Seeded once from the journaled jobs (highest numeric suffix wins;
    malformed ids are ignored), then every :meth:`next` call increments
    under the allocator's own lock — concurrent submissions and runners
    can never draw the same id, and a restarted daemon never reissues
    one.
    """

    def __init__(self, existing: Mapping[str, JobRecord] | None = None) -> None:
        self._lock = threading.Lock()
        self._highest = 0
        for job_id in existing or ():
            try:
                self._highest = max(
                    self._highest, int(job_id.rsplit("-", 1)[1])
                )
            except (IndexError, ValueError):
                continue

    def next(self) -> str:
        """The next unused job id (thread-safe)."""
        with self._lock:
            self._highest += 1
            return f"job-{self._highest:06d}"


class JobJournal:
    """Append-only JSONL journal of job state transitions.

    Usage::

        journal = JobJournal(path)
        jobs = journal.open()                 # job_id -> latest JobRecord
        journal.record("queued", job)         # before each transition
        journal.close()

    :meth:`open` on an existing file replays every event and returns the
    *latest* record per job id — the daemon's restart state.  Appends
    are flushed and fsynced, mirroring the candidate checkpoint journal,
    so a kill loses at most the torn final line.

    ``faults`` arms the service-level chaos harness: a ``torn-journal``
    fault makes one :meth:`record` write only a prefix of its line and
    then close the journal — the on-disk state of a daemon that died
    mid-``fsync``.  From that point the journal (and the daemon built on
    it) is dead; a restart on the same path must drop the torn line and
    recover from the last whole one.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        faults: ServiceFaultPlan | None = None,
    ) -> None:
        self.path = os.fspath(path)
        self.faults = faults
        self.header: dict[str, Any] = {}
        self._fh: io.TextIOBase | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True when the journal cannot accept appends (never opened,
        explicitly closed, or killed by an injected torn write)."""
        return self._fh is None

    def open(
        self, header_extras: Mapping[str, Any] | None = None
    ) -> dict[str, JobRecord]:
        """Open for appending; return the latest record per job id.

        ``header_extras`` are merged into the header of a *fresh*
        journal (e.g. the service's ``max_attempts`` retry cap, which
        the AD806 validator reads back); an existing journal keeps its
        own header, exposed as :attr:`header`.
        """
        jobs: dict[str, JobRecord] = {}
        fresh = not os.path.exists(self.path)
        if not fresh:
            jobs = self._load()
            if self._keep_bytes is not None:
                # The file ends in a torn write; cut it back to the last
                # whole line so the next append starts a clean one.
                with open(self.path, "r+b") as raw:
                    raw.truncate(self._keep_bytes)
        self._fh = open(self.path, "a" if not fresh else "w", encoding="utf-8")
        if fresh:
            self.header = {"format": JOB_FORMAT, "version": JOB_VERSION}
            for key, value in sorted((header_extras or {}).items()):
                self.header.setdefault(key, value)
            self._write_line(self.header)
        return jobs

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends -----------------------------------------------------------

    def record(self, event: str, job: JobRecord) -> None:
        """Durably append one state transition."""
        if self._fh is None:
            raise RuntimeError("job journal is not open")
        if event != job.state:
            raise ValueError(
                f"event {event!r} disagrees with record state {job.state!r}"
            )
        line = json.dumps({"event": event, "job": job.to_dict()}, sort_keys=True)
        if self.faults is not None and self.faults.take("torn-journal") is not None:
            fh, self._fh = self._fh, None  # the journal dies with the write
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            fh.close()
            raise InjectedRunnerDeath(
                f"injected torn journal append @ {event} {job.job_id}"
            )
        self._write_line_text(line)

    def _write_line(self, obj: dict[str, Any]) -> None:
        self._write_line_text(json.dumps(obj, sort_keys=True))

    def _write_line_text(self, line: str) -> None:
        assert self._fh is not None
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- replay ------------------------------------------------------------

    def _load(self) -> dict[str, JobRecord]:
        self._keep_bytes: int | None = None
        with open(self.path, encoding="utf-8") as fh:
            text = fh.read()
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JobJournalError(f"{self.path}: empty job journal")
        header = self._parse(lines[0], line_no=1, final=False)
        if header is None or header.get("format") != JOB_FORMAT:
            raise JobJournalError(f"{self.path}: not a {JOB_FORMAT} journal")
        if header.get("version") not in _READABLE_VERSIONS:
            raise JobJournalError(
                f"{self.path}: unsupported job journal version "
                f"{header.get('version')!r} (expected one of {_READABLE_VERSIONS})"
            )
        self.header = header
        jobs: dict[str, JobRecord] = {}
        last = len(lines) - 1
        for i, line in enumerate(lines[1:], start=1):
            obj = self._parse(line, line_no=i + 1, final=i == last)
            if obj is None:
                self._mark_torn_tail(text, lines[last])
                continue  # torn final write of a killed daemon
            try:
                record = JobRecord.from_dict(obj["job"])
            except (KeyError, TypeError, ValueError) as exc:
                if i == last:
                    self._mark_torn_tail(text, lines[last])
                    continue
                raise JobJournalError(
                    f"{self.path}:{i + 1}: bad job record ({exc})"
                ) from exc
            jobs[record.job_id] = record
        return jobs

    def _mark_torn_tail(self, text: str, torn_line: str) -> None:
        """Remember how many bytes of the file precede the torn final
        line, so :meth:`open` can truncate before appending (otherwise
        the next append would fuse onto the torn prefix, turning a
        recoverable tail into corruption in the middle of the file)."""
        keep = text
        if keep.endswith("\n"):
            keep = keep[: -1]
        keep = keep[: len(keep) - len(torn_line)]
        self._keep_bytes = len(keep.encode("utf-8"))

    def _parse(
        self, line: str, line_no: int, final: bool
    ) -> dict[str, Any] | None:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict):
            return obj
        if final:
            return None
        raise JobJournalError(
            f"{self.path}:{line_no}: not a JSON object — corrupt job journal"
        )


__all__ = [
    "JOB_FORMAT",
    "JOB_STATES",
    "JOB_VERSION",
    "TERMINAL_STATES",
    "JobIdAllocator",
    "JobJournal",
    "JobJournalError",
    "JobRecord",
    "next_job_id",
]
