"""Durable job state: records, states, and the JSONL job journal.

Every job state transition is appended to one JSONL journal before it
takes effect in memory, so a killed daemon replays the journal on
restart and resumes exactly the jobs that were queued or running.  The
format mirrors :mod:`repro.resilience.checkpoint`: a header line, one
JSON object per event, flush + fsync per append, and a torn final line
(the write the kill interrupted) dropped silently.

Job ids are allocated sequentially (``job-000001``...) from the highest
id seen in the journal — no clocks, no randomness — so a restarted
daemon never reissues an id.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

#: Format tag in the job-journal header; bump the version on any
#: record-shape change.
JOB_FORMAT = "atomic-dataflow-job-journal"
JOB_VERSION = 1

#: Every legal job state, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_RECORD_KEYS = frozenset(
    {
        "job_id",
        "fingerprint",
        "model",
        "tenant",
        "request",
        "state",
        "source",
        "error",
        "total_cycles",
        "search_seconds",
    }
)


class JobJournalError(ValueError):
    """The job journal on disk cannot be used."""


@dataclass(frozen=True)
class JobRecord:
    """One job's durable state.

    Attributes:
        job_id: Sequentially allocated id (``job-%06d``).
        fingerprint: Request fingerprint (store / coalescing key).
        model: Model-zoo name, denormalized for listings.
        tenant: Submitting tenant, for quota accounting on replay.
        request: The full serialized :class:`CompileRequest`, so a
            restarted daemon can re-run the job without the client.
        state: One of :data:`JOB_STATES`.
        source: How the result was (or will be) produced — ``search``
            for a real search, ``cache`` for a store hit at submit time,
            ``coalesced`` for a waiter on another job's search.
        error: Failure description when ``state == "failed"``.
        total_cycles: Solution cost once done.
        search_seconds: Wall seconds the search took (0.0 for hits).
    """

    job_id: str
    fingerprint: str
    model: str
    tenant: str
    request: dict = field(default_factory=dict)
    state: str = "queued"
    source: str = "search"
    error: str | None = None
    total_cycles: int | None = None
    search_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}")
        if self.source not in ("search", "cache", "coalesced"):
            raise ValueError(f"unknown job source {self.source!r}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "model": self.model,
            "tenant": self.tenant,
            "request": self.request,
            "state": self.state,
            "source": self.source,
            "error": self.error,
            "total_cycles": self.total_cycles,
            "search_seconds": self.search_seconds,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobRecord":
        unknown = sorted(set(doc) - _RECORD_KEYS)
        if unknown:
            raise ValueError(f"unknown job record key(s): {', '.join(unknown)}")
        missing = [k for k in ("job_id", "fingerprint", "model", "tenant") if k not in doc]
        if missing:
            raise ValueError(f"job record missing key(s): {', '.join(missing)}")
        return cls(**dict(doc))

    def advanced(self, state: str, **changes: Any) -> "JobRecord":
        """A copy in ``state`` with ``changes`` applied."""
        return replace(self, state=state, **changes)


def next_job_id(existing: Mapping[str, JobRecord] | None = None) -> str:
    """The next sequential job id given already-journaled jobs."""
    highest = 0
    for job_id in existing or ():
        try:
            highest = max(highest, int(job_id.rsplit("-", 1)[1]))
        except (IndexError, ValueError):
            continue
    return f"job-{highest + 1:06d}"


class JobJournal:
    """Append-only JSONL journal of job state transitions.

    Usage::

        journal = JobJournal(path)
        jobs = journal.open()                 # job_id -> latest JobRecord
        journal.record("queued", job)         # before each transition
        journal.close()

    :meth:`open` on an existing file replays every event and returns the
    *latest* record per job id — the daemon's restart state.  Appends
    are flushed and fsynced, mirroring the candidate checkpoint journal,
    so a kill loses at most the torn final line.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fh: io.TextIOBase | None = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> dict[str, JobRecord]:
        """Open for appending; return the latest record per job id."""
        jobs: dict[str, JobRecord] = {}
        fresh = not os.path.exists(self.path)
        if not fresh:
            jobs = self._load()
        self._fh = open(self.path, "a" if not fresh else "w", encoding="utf-8")
        if fresh:
            self._write_line({"format": JOB_FORMAT, "version": JOB_VERSION})
        return jobs

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends -----------------------------------------------------------

    def record(self, event: str, job: JobRecord) -> None:
        """Durably append one state transition."""
        if self._fh is None:
            raise RuntimeError("job journal is not open")
        if event != job.state:
            raise ValueError(
                f"event {event!r} disagrees with record state {job.state!r}"
            )
        self._write_line({"event": event, "job": job.to_dict()})

    def _write_line(self, obj: dict[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- replay ------------------------------------------------------------

    def _load(self) -> dict[str, JobRecord]:
        with open(self.path, encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JobJournalError(f"{self.path}: empty job journal")
        header = self._parse(lines[0], line_no=1, final=False)
        if header is None or header.get("format") != JOB_FORMAT:
            raise JobJournalError(f"{self.path}: not a {JOB_FORMAT} journal")
        if header.get("version") != JOB_VERSION:
            raise JobJournalError(
                f"{self.path}: unsupported job journal version "
                f"{header.get('version')!r} (expected {JOB_VERSION})"
            )
        jobs: dict[str, JobRecord] = {}
        last = len(lines) - 1
        for i, line in enumerate(lines[1:], start=1):
            obj = self._parse(line, line_no=i + 1, final=i == last)
            if obj is None:
                continue  # torn final write of a killed daemon
            try:
                record = JobRecord.from_dict(obj["job"])
            except (KeyError, TypeError, ValueError) as exc:
                if i == last:
                    continue
                raise JobJournalError(
                    f"{self.path}:{i + 1}: bad job record ({exc})"
                ) from exc
            jobs[record.job_id] = record
        return jobs

    def _parse(
        self, line: str, line_no: int, final: bool
    ) -> dict[str, Any] | None:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict):
            return obj
        if final:
            return None
        raise JobJournalError(
            f"{self.path}:{line_no}: not a JSON object — corrupt job journal"
        )


__all__ = [
    "JOB_FORMAT",
    "JOB_STATES",
    "JOB_VERSION",
    "TERMINAL_STATES",
    "JobJournal",
    "JobJournalError",
    "JobRecord",
    "next_job_id",
]
