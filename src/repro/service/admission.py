"""Admission control: bounded queue depth and per-tenant quotas.

The daemon admits a submission before enqueueing it and releases the
slot when the job reaches a terminal state.  Rejections are clean,
typed backpressure errors (:class:`AdmissionError` with a stable
``code``) that the wire protocol forwards verbatim — a full daemon says
*no* immediately instead of queueing unboundedly.

Cache hits bypass admission entirely: they consume no search capacity,
so a saturated daemon still answers questions it has already solved.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import get_registry


class AdmissionError(RuntimeError):
    """A submission was rejected; ``code`` is machine-readable.

    Codes:
        ``queue-full``: Total in-flight jobs at ``max_queue_depth``.
        ``quota-exceeded``: The tenant is at its in-flight quota.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class AdmissionController:
    """Thread-safe in-flight accounting with two limits.

    Args:
        max_queue_depth: Cap on total in-flight (queued + running)
            jobs across all tenants.
        default_quota: Per-tenant in-flight cap for tenants without an
            explicit entry in ``quotas``.
        quotas: Per-tenant overrides, e.g. ``{"ci": 8}``.
    """

    def __init__(
        self,
        max_queue_depth: int = 16,
        default_quota: int = 4,
        quotas: dict[str, int] | None = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if default_quota < 1:
            raise ValueError("default_quota must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        for tenant, quota in self.quotas.items():
            if quota < 1:
                raise ValueError(f"quota for {tenant!r} must be >= 1")
        self._lock = threading.Lock()
        self._in_flight: dict[str, int] = {}

    def quota_for(self, tenant: str) -> int:
        return self.quotas.get(tenant, self.default_quota)

    def admit(self, tenant: str) -> None:
        """Claim one in-flight slot for ``tenant`` or raise.

        Raises:
            AdmissionError: Queue full or tenant over quota; the slot
                is *not* claimed.
        """
        registry = get_registry()
        with self._lock:
            total = sum(self._in_flight.values())
            if total >= self.max_queue_depth:
                registry.counter("admission.rejected.queue_full").inc()
                raise AdmissionError(
                    "queue-full",
                    f"queue depth {total} at limit {self.max_queue_depth}; "
                    "retry after in-flight jobs drain",
                )
            held = self._in_flight.get(tenant, 0)
            quota = self.quota_for(tenant)
            if held >= quota:
                registry.counter("admission.rejected.quota").inc()
                raise AdmissionError(
                    "quota-exceeded",
                    f"tenant {tenant!r} has {held} in-flight job(s), "
                    f"quota {quota}; wait for one to finish",
                )
            self._in_flight[tenant] = held + 1
            registry.counter("admission.accepted").inc()
            registry.gauge("admission.in_flight").set(total + 1)

    def release(self, tenant: str) -> None:
        """Return ``tenant``'s slot when its job reaches a terminal state."""
        with self._lock:
            held = self._in_flight.get(tenant, 0)
            if held <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = held - 1
            get_registry().gauge("admission.in_flight").set(
                sum(self._in_flight.values())
            )

    def in_flight(self, tenant: str | None = None) -> int:
        """In-flight jobs for one tenant, or total when tenant is None."""
        with self._lock:
            if tenant is not None:
                return self._in_flight.get(tenant, 0)
            return sum(self._in_flight.values())

    def snapshot(self) -> dict:
        """Accounting state for ``repro jobs --stats`` / AD803."""
        with self._lock:
            return {
                "max_queue_depth": self.max_queue_depth,
                "default_quota": self.default_quota,
                "quotas": dict(self.quotas),
                "in_flight": dict(sorted(self._in_flight.items())),
                "total_in_flight": sum(self._in_flight.values()),
            }


__all__ = ["AdmissionController", "AdmissionError"]
