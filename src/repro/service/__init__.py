"""Compiler-as-a-service: the ``repro serve`` daemon and its parts.

The paper's orchestration search is an offline compile; the service
layer turns it into a long-lived daemon so that identical requests are
cache hits instead of repeated searches:

* :mod:`~repro.service.request` — :class:`CompileRequest`, the
  canonical unit of work with its deterministic fingerprint;
* :mod:`~repro.service.store` — :class:`SolutionStore`, the
  content-addressed on-disk cache of validated solution documents;
* :mod:`~repro.service.jobs` — :class:`JobJournal`, durable JSONL job
  state that survives a daemon kill;
* :mod:`~repro.service.admission` — :class:`AdmissionController`,
  bounded queue depth and per-tenant quotas;
* :mod:`~repro.service.session` — :class:`CompileSession` /
  :class:`SessionManager`, warm search contexts and executor pools
  reused across requests;
* :mod:`~repro.service.daemon` — :class:`ReproService`, the job queue,
  the supervised lease-based runner pool, and the unix-socket
  line-delimited-JSON front end;
* :mod:`~repro.service.client` — :class:`ServeClient`, the thin client
  behind ``repro submit`` / ``repro jobs``;
* :mod:`~repro.service.events` — :class:`EventLog`, the append-only
  service event log (``events.jsonl``) plus the AD807 journal-agreement
  oracle and the per-job trace document format;
* :mod:`~repro.service.metrics_http` — :class:`MetricsHTTPServer`, the
  read-only ``/metrics`` / ``/healthz`` / ``/jobs`` HTTP exporter
  behind ``repro serve --metrics-port``.

Determinism contract: a served compile is bit-identical to the same
``repro optimize`` invocation — with any runner count, and across every
recovery path (runner crash, stall reclaim, daemon kill/restart, drain)
— and a cache hit returns the byte-exact stored solution document.
"""

from __future__ import annotations

from repro.service.admission import AdmissionController, AdmissionError
from repro.service.client import (
    SUN_PATH_LIMIT,
    ServeClient,
    ServiceError,
    socket_path_problem,
)
from repro.service.daemon import ReproService, serve
from repro.service.events import EventLog, expected_events, read_events
from repro.service.jobs import JobIdAllocator, JobJournal, JobRecord
from repro.service.metrics_http import MetricsHTTPServer
from repro.service.request import CompileRequest
from repro.service.session import CompileSession, SessionManager
from repro.service.store import SolutionStore, StoreEntry

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "CompileRequest",
    "CompileSession",
    "EventLog",
    "JobIdAllocator",
    "JobJournal",
    "JobRecord",
    "MetricsHTTPServer",
    "ReproService",
    "SUN_PATH_LIMIT",
    "ServeClient",
    "ServiceError",
    "SessionManager",
    "SolutionStore",
    "StoreEntry",
    "expected_events",
    "read_events",
    "serve",
    "socket_path_problem",
]
