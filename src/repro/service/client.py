"""Thin client for the ``repro serve`` wire protocol.

One connection per call: connect to the unix socket, write one JSON
line, read one JSON line, disconnect.  :class:`ServiceError` carries the
daemon's machine-readable error code (``queue-full``,
``quota-exceeded``, ``bad-request``, ``not-found``...), so callers can
distinguish backpressure from mistakes.

This is everything ``repro submit`` / ``repro jobs`` / ``repro cache``
need — no HTTP stack, no new dependencies.
"""

from __future__ import annotations

import json
import socket
import time

from repro.service.request import CompileRequest


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false``; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """Client of one ``repro serve`` daemon.

    Args:
        socket_path: The daemon's unix socket.
        timeout_s: Per-call socket timeout.
    """

    def __init__(self, socket_path: str, timeout_s: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------

    def call(self, op: str, **fields: object) -> dict:
        """One round trip; returns the response with ``ok`` stripped.

        Raises:
            ServiceError: The daemon rejected the request (its error
                code is preserved) or answered garbage.
            ConnectionError / OSError: The daemon is unreachable.
        """
        request = {"op": op, **fields}
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout_s)
            sock.connect(self.socket_path)
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            with sock.makefile("r", encoding="utf-8") as fh:
                line = fh.readline()
        if not line:
            raise ServiceError("no-response", "daemon closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError("bad-response", f"unparseable response: {exc}") from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ServiceError("bad-response", f"malformed response: {response!r}")
        if not response["ok"]:
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "unknown"),
                error.get("message", "daemon reported an error"),
            )
        response.pop("ok")
        return response

    # -- the protocol, one method per op ------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def submit(self, request: CompileRequest | dict) -> dict:
        """Submit one compile; returns ``{"job_id", "state", "source"}``."""
        doc = request.to_dict() if isinstance(request, CompileRequest) else request
        return self.call("submit", request=doc)

    def status(self, job_id: str) -> dict:
        return self.call("status", job_id=job_id)["job"]

    def result(self, job_id: str) -> dict:
        """The finished job's result, ``solution_json`` byte-exact."""
        return self.call("result", job_id=job_id)

    def wait(
        self, job_id: str, timeout_s: float = 600.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job is terminal; returns its final record.

        Raises:
            TimeoutError: Still running after ``timeout_s``.
        """
        # Deadline math is wall-clock by necessity (client-side wait on a
        # remote daemon); it never influences what gets computed.
        deadline = time.monotonic() + timeout_s  # static-ok: LINT008 -- client-side poll deadline, not a search decision
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:  # static-ok: LINT008 -- client-side poll deadline, not a search decision
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def cancel(self, job_id: str) -> dict:
        return self.call("cancel", job_id=job_id)

    def jobs(self) -> list[dict]:
        return self.call("jobs")["jobs"]

    def stats(self) -> dict:
        return self.call("stats")["stats"]

    def shutdown(self) -> dict:
        return self.call("shutdown")


__all__ = ["ServeClient", "ServiceError"]
