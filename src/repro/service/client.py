"""Thin client for the ``repro serve`` wire protocol.

One connection per call: connect to the unix socket, write one JSON
line, read one JSON line, disconnect.  :class:`ServiceError` carries the
daemon's machine-readable error code (``queue-full``,
``quota-exceeded``, ``bad-request``, ``not-found``, ``draining``...), so
callers can distinguish backpressure from mistakes.

Transient transport failures — a connection refused/reset mid-restart,
a response line the daemon never wrote — are retried with the shared
deterministic backoff ladder (:func:`repro.resilience.timing.backoff_for`);
every wait is bounded by a monotonic :class:`~repro.resilience.timing.Deadline`,
never by wall-clock arithmetic, so the client needs no static-analysis
suppressions.  Retrying a ``submit`` is safe by design: an identical
in-flight request coalesces, a published one is a cache hit.

This is everything ``repro submit`` / ``repro jobs`` / ``repro cache``
need — no HTTP stack, no new dependencies.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import time

from repro.resilience.timing import Deadline, backoff_for
from repro.service.request import CompileRequest

#: Portable floor of the ``sockaddr_un.sun_path`` buffer (Linux allows
#: 108 bytes, the BSDs 104; both counts include the NUL terminator).
SUN_PATH_LIMIT = 104

#: Transport failures worth retrying: the daemon is restarting, its
#: listen backlog blinked, or the kernel reset us mid-handshake.  A
#: *timeout* is deliberately excluded — the daemon may be working on a
#: long search and a retry would just queue a duplicate wait.
_RETRYABLE_ERRNOS = (
    "ECONNREFUSED",
    "ECONNRESET",
    "EPIPE",
    "ENOENT",
)


def socket_path_problem(path: str | os.PathLike) -> str | None:
    """Why ``path`` cannot be a unix socket address, or None if it can.

    ``AF_UNIX`` addresses live in a fixed ~104-byte kernel buffer
    (``sun_path``); binding or connecting a longer path fails with a
    baffling ``OSError``.  Both ``repro serve`` and the clients check up
    front and turn this into a clean usage error.
    """
    raw = os.fsencode(os.fspath(path))
    if len(raw) >= SUN_PATH_LIMIT:
        return (
            f"unix socket path is {len(raw)} bytes, over the ~{SUN_PATH_LIMIT}-byte "
            f"sun_path limit; use a shorter --socket path (e.g. under /tmp)"
        )
    return None


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false``; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _is_retryable_oserror(exc: OSError) -> bool:
    if isinstance(exc, socket.timeout):
        return False
    if isinstance(exc, (ConnectionError, FileNotFoundError)):
        return True
    codes = {getattr(errno, name, None) for name in _RETRYABLE_ERRNOS}
    return exc.errno in codes


class ServeClient:
    """Client of one ``repro serve`` daemon.

    Args:
        socket_path: The daemon's unix socket.
        timeout_s: Per-call socket timeout.
        retries: Transparent retries of one call on transient transport
            failure (connection refused/reset, dropped response line).
        backoff_s: Base of the deterministic exponential backoff
            between those retries.

    Raises:
        ValueError: ``socket_path`` exceeds the ``sun_path`` limit.
    """

    def __init__(
        self,
        socket_path: str,
        timeout_s: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.05,
    ) -> None:
        problem = socket_path_problem(socket_path)
        if problem is not None:
            raise ValueError(problem)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.socket_path = socket_path
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s

    # -- transport ----------------------------------------------------------

    def call(self, op: str, **fields: object) -> dict:
        """One round trip; returns the response with ``ok`` stripped.

        Transient transport failures retry up to ``self.retries`` times
        with deterministic exponential backoff; daemon-reported errors
        (``ok: false``) never retry here — backpressure policy belongs
        to the caller (see :meth:`submit`).

        Raises:
            ServiceError: The daemon rejected the request (its error
                code is preserved) or answered garbage.
            ConnectionError / OSError: The daemon stayed unreachable
                through every retry.
        """
        attempt = 0
        while True:
            try:
                return self._call_once(op, fields)
            except ServiceError as exc:
                if exc.code != "no-response" or attempt >= self.retries:
                    raise
            except OSError as exc:
                if not _is_retryable_oserror(exc) or attempt >= self.retries:
                    raise
            attempt += 1
            time.sleep(backoff_for(attempt, base_s=self.backoff_s))

    def _call_once(self, op: str, fields: dict) -> dict:
        request = {"op": op, **fields}
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout_s)
            sock.connect(self.socket_path)
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            with sock.makefile("r", encoding="utf-8") as fh:
                line = fh.readline()
        if not line:
            raise ServiceError("no-response", "daemon closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError("bad-response", f"unparseable response: {exc}") from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ServiceError("bad-response", f"malformed response: {response!r}")
        if not response["ok"]:
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "unknown"),
                error.get("message", "daemon reported an error"),
            )
        response.pop("ok")
        return response

    # -- the protocol, one method per op ------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def submit(
        self,
        request: CompileRequest | dict,
        backpressure_timeout_s: float = 0.0,
    ) -> dict:
        """Submit one compile; returns ``{"job_id", "state", "source"}``.

        With ``backpressure_timeout_s > 0``, ``queue-full`` /
        ``quota-exceeded`` rejections are retried with deterministic
        exponential backoff until the deadline — the polite way to feed
        a busy daemon.  ``draining`` is never retried: this daemon is
        going away.
        """
        doc = request.to_dict() if isinstance(request, CompileRequest) else request
        deadline = Deadline(backpressure_timeout_s)
        attempt = 0
        while True:
            try:
                return self.call("submit", request=doc)
            except ServiceError as exc:
                if exc.code not in ("queue-full", "quota-exceeded"):
                    raise
                if deadline.expired:
                    raise
            attempt += 1
            remaining = deadline.remaining_s()
            pause = backoff_for(attempt, base_s=self.backoff_s)
            if remaining is not None:
                pause = min(pause, remaining)
            time.sleep(pause)

    def status(self, job_id: str) -> dict:
        return self.call("status", job_id=job_id)["job"]

    def result(self, job_id: str) -> dict:
        """The finished job's result, ``solution_json`` byte-exact."""
        return self.call("result", job_id=job_id)

    def wait(
        self, job_id: str, timeout_s: float | None = 600.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job is terminal; returns its final record.

        The poll interval starts at ``poll_s`` and doubles per poll
        (capped at 1s) — a deterministic backoff that keeps short jobs
        snappy without hammering the daemon over long searches.

        Raises:
            TimeoutError: Still running after ``timeout_s``.
        """
        deadline = Deadline(timeout_s)
        poll = poll_s
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline.expired:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout_s}s"
                )
            pause = poll
            remaining = deadline.remaining_s()
            if remaining is not None:
                pause = min(pause, remaining)
            time.sleep(pause)
            poll = min(poll * 2.0, 1.0)

    def cancel(self, job_id: str) -> dict:
        return self.call("cancel", job_id=job_id)

    def jobs(self) -> list[dict]:
        return self.call("jobs")["jobs"]

    def stats(self) -> dict:
        return self.call("stats")["stats"]

    def health(self) -> dict:
        """Runner liveness, live leases, lease stats, metrics snapshot."""
        return self.call("health")["health"]

    def trace(self, job_id: str) -> dict:
        """The job's stitched span tree: ``{job_id, trace_id, root_pid, spans}``."""
        return self.call("trace", job_id=job_id)

    def drain(self, timeout_s: float | None = 60.0) -> dict:
        """Gracefully drain the daemon (it exits once drained)."""
        return self.call("drain", timeout_s=timeout_s)

    def shutdown(self) -> dict:
        return self.call("shutdown")


__all__ = [
    "SUN_PATH_LIMIT",
    "ServeClient",
    "ServiceError",
    "socket_path_problem",
]
