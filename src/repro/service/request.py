"""The compile request: one unit of service work, canonically keyed.

A :class:`CompileRequest` is the service-side extraction of what
``framework.optimize`` used to take as loose arguments: a zoo model, an
architecture, and the search options — plus the tenant submitting it.
Its :meth:`~CompileRequest.fingerprint` is the deterministic request
digest from :mod:`repro.fingerprint` (graph structure + arch + decision
options), the key of the content-addressed solution store and of job
coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping

from repro.config import DEFAULT_ARCH, ArchConfig
from repro.fingerprint import (
    arch_from_dict,
    arch_to_dict,
    request_fingerprint,
)
from repro.framework import OptimizerOptions
from repro.ir.graph import Graph

#: Wire-form keys of a serialized request.
_REQUEST_KEYS = frozenset({"model", "arch", "options", "tenant"})


@dataclass(frozen=True)
class CompileRequest:
    """One compile: a zoo model on an architecture under search options.

    Attributes:
        model: Model-zoo name (resolved via :func:`repro.models.get_model`).
        arch: Target architecture.
        options: Search configuration; execution-only knobs (jobs,
            retries, checkpointing...) are the daemon's business and are
            excluded from the fingerprint.
        tenant: Submitting tenant, for quota accounting.  Not part of
            the fingerprint — two tenants asking the same question share
            one cache entry.
    """

    model: str
    arch: ArchConfig = field(default_factory=lambda: DEFAULT_ARCH)
    options: OptimizerOptions = field(default_factory=OptimizerOptions)
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.model:
            raise ValueError("request needs a model name")
        if not self.tenant:
            raise ValueError("request needs a tenant name")

    @cached_property
    def graph(self) -> Graph:
        """The workload graph, built once per request object.

        Raises:
            KeyError: On an unknown model name.
        """
        from repro.models import get_model

        return get_model(self.model)

    @cached_property
    def fingerprint(self) -> str:
        """The canonical request digest (store / coalescing key)."""
        return request_fingerprint(self.graph, self.arch, self.options)

    def to_dict(self) -> dict:
        """The pure-JSON wire form (what ``repro submit`` sends)."""
        return {
            "model": self.model,
            "arch": arch_to_dict(self.arch),
            "options": self.options.to_dict(),
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CompileRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Raises:
            ValueError: On unknown keys at any level, a missing model,
                or option/arch values the dataclasses reject.
        """
        unknown = sorted(set(doc) - _REQUEST_KEYS)
        if unknown:
            raise ValueError(f"unknown request key(s): {', '.join(unknown)}")
        if "model" not in doc or not isinstance(doc["model"], str):
            raise ValueError("request needs a 'model' string")
        arch = doc.get("arch")
        options = doc.get("options")
        return cls(
            model=doc["model"],
            arch=arch_from_dict(arch) if isinstance(arch, Mapping)
            else DEFAULT_ARCH,
            options=OptimizerOptions.from_dict(options)
            if isinstance(options, Mapping)
            else OptimizerOptions(),
            tenant=doc.get("tenant", "default"),
        )


__all__ = ["CompileRequest"]
