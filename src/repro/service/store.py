"""Content-addressed on-disk store of validated solution documents.

Layout under the store root::

    index.json           # access metadata (atomic temp+replace writes)
    objects/<fp>.json    # canonical solution bytes, keyed by request
                         # fingerprint

Every entry is written through :func:`repro.serialize.canonical_solution_bytes`,
so a cache hit returns the byte-identical document the original search
produced.  Writes are Tier-A validated (the full artifact rule set
against a rebuilt graph); reads are integrity-checked (content digest +
document shape) — the cheap half of AD801, which ``repro check --store``
runs in full.

Eviction is LRU by a persisted monotonically increasing access sequence,
never by wall-clock time, so `gc` decisions replay identically.
Counters land in :mod:`repro.obs` metrics as ``store.hits`` /
``.misses`` / ``.evictions`` / ``.writes`` / ``.corrupt``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.serialize import FORMAT as SOLUTION_FORMAT
from repro.serialize import VERSION as SOLUTION_VERSION

#: Format tag of ``index.json``; bump the version on layout changes.
STORE_FORMAT = "atomic-dataflow-store-index"
STORE_VERSION = 1

_log = get_logger(__name__)


class StoreError(ValueError):
    """A store operation was handed an invalid document or fingerprint."""


def check_solution_document(doc: Any) -> str | None:
    """Cheap shape check of a solution document (the read-path gate).

    Returns a problem description or None.  This is deliberately light —
    no graph rebuild — so cache hits stay orders of magnitude faster
    than searches; the full Tier-A validation runs on every write and in
    ``repro check --store`` (AD801).
    """
    if not isinstance(doc, dict):
        return "document is not a JSON object"
    if doc.get("format") != SOLUTION_FORMAT:
        return f"format {doc.get('format')!r} != {SOLUTION_FORMAT!r}"
    if doc.get("version") != SOLUTION_VERSION:
        return f"unsupported version {doc.get('version')!r}"
    missing = [
        k
        for k in ("workload", "dataflow", "batch", "tiling", "rounds",
                  "placement", "metrics")
        if k not in doc
    ]
    if missing:
        return f"missing section(s): {', '.join(missing)}"
    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or "total_cycles" not in metrics:
        return "metrics section carries no total_cycles"
    if not isinstance(metrics["total_cycles"], int) or metrics["total_cycles"] < 0:
        return f"total_cycles {metrics['total_cycles']!r} is not a non-negative int"
    return None


@dataclass(frozen=True)
class StoreEntry:
    """Index metadata of one stored solution.

    Attributes:
        fingerprint: Request fingerprint (the object key).
        size_bytes: Stored document size.
        sha256: Content digest of the stored bytes.
        workload: Model name, for ``repro cache ls`` display.
        total_cycles: Solution cost, for display.
        created_seq: Access sequence at write time.
        last_access: Access sequence of the most recent read or write
            (the LRU key; monotonic counter, not wall time).
        hits: Reads served from this entry.
    """

    fingerprint: str
    size_bytes: int
    sha256: str
    workload: str
    total_cycles: int
    created_seq: int
    last_access: int
    hits: int = 0

    def to_dict(self) -> dict:
        return {
            "size_bytes": self.size_bytes,
            "sha256": self.sha256,
            "workload": self.workload,
            "total_cycles": self.total_cycles,
            "created_seq": self.created_seq,
            "last_access": self.last_access,
            "hits": self.hits,
        }


class SolutionStore:
    """Content-addressed solution cache with LRU eviction.

    Thread-safe: one lock serializes index mutation (the daemon's
    submit path and runner thread both touch it).

    Args:
        root: Store directory (created on demand).
        capacity_bytes: Soft size cap enforced after every write; None
            disables automatic eviction (``gc`` can still be run
            explicitly).
    """

    def __init__(
        self, root: str | os.PathLike, capacity_bytes: int | None = None
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.index_path = self.root / "index.json"
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self.objects.mkdir(parents=True, exist_ok=True)
        self._access_seq = 0
        self._tmp_seq = 0
        self._entries: dict[str, StoreEntry] = {}
        self._load_index()

    # -- index persistence --------------------------------------------------

    def _load_index(self) -> None:
        try:
            doc = json.loads(self.index_path.read_text(encoding="utf-8"))
            if doc.get("format") != STORE_FORMAT:
                raise ValueError(f"not a store index: {doc.get('format')!r}")
            if doc.get("version") != STORE_VERSION:
                raise ValueError(f"unsupported index version {doc.get('version')!r}")
            self._access_seq = int(doc["access_seq"])
            self._entries = {
                fp: StoreEntry(
                    fingerprint=fp,
                    size_bytes=int(e["size_bytes"]),
                    sha256=e["sha256"],
                    workload=e["workload"],
                    total_cycles=int(e["total_cycles"]),
                    created_seq=int(e["created_seq"]),
                    last_access=int(e["last_access"]),
                    hits=int(e.get("hits", 0)),
                )
                for fp, e in doc["entries"].items()
            }
        except FileNotFoundError:
            return
        except (ValueError, KeyError, TypeError) as exc:
            _log.warning("store index unreadable (%s); rebuilding", exc)
            self._rebuild_index()

    def _rebuild_index(self) -> None:
        """Reconstruct the index by scanning ``objects/`` (crash recovery).

        Access history is lost; entries are re-sequenced in sorted
        fingerprint order, which is deterministic if arbitrary.
        """
        self._entries = {}
        self._access_seq = 0
        for path in sorted(self.objects.glob("*.json")):
            fp = path.stem
            try:
                payload = path.read_bytes()
                doc = json.loads(payload)
            except (OSError, ValueError):
                continue
            problem = check_solution_document(doc)
            if problem is not None:
                _log.warning("dropping unreadable store object %s: %s", fp, problem)
                continue
            self._access_seq += 1
            self._entries[fp] = StoreEntry(
                fingerprint=fp,
                size_bytes=len(payload),
                sha256=hashlib.sha256(payload).hexdigest(),
                workload=str(doc.get("workload", "")),
                total_cycles=int(doc["metrics"]["total_cycles"]),
                created_seq=self._access_seq,
                last_access=self._access_seq,
                hits=0,
            )
        self._save_index()

    def _save_index(self) -> None:
        doc = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "access_seq": self._access_seq,
            "entries": {
                fp: entry.to_dict() for fp, entry in sorted(self._entries.items())
            },
        }
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.index_path)

    # -- primitives ---------------------------------------------------------

    def _object_path(self, fingerprint: str) -> Path:
        if not fingerprint or not all(
            c in "0123456789abcdef" for c in fingerprint
        ):
            raise StoreError(f"invalid fingerprint {fingerprint!r}")
        return self.objects / f"{fingerprint}.json"

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def total_bytes(self) -> int:
        """Stored payload bytes summed over all entries."""
        return sum(e.size_bytes for e in self._entries.values())

    # -- the cache API ------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        doc: dict,
        graph: Any = None,
        arch: Any = None,
    ) -> bytes:
        """Validate and persist one solution document; return its bytes.

        The document is serialized canonically (``search`` section
        dropped, sorted keys, no whitespace), Tier-A validated against
        ``graph``/``arch`` when both are given (always give them on the
        daemon's write path), and written atomically.

        Raises:
            StoreError: On a document failing the shape check.
            repro.analysis.diagnostics.ArtifactValidationError: On a
                document failing full validation.
        """
        from repro.serialize import canonical_solution_bytes

        payload = canonical_solution_bytes(doc)
        problem = check_solution_document(json.loads(payload))
        if problem is not None:
            raise StoreError(f"refusing to store invalid solution: {problem}")
        path = self._object_path(fingerprint)
        with self._lock:
            # Unique temp name per write: two runners publishing the
            # same fingerprint concurrently must not clobber each
            # other's staging file mid-validation.
            self._tmp_seq += 1
            tmp = path.with_suffix(f".json.tmp{self._tmp_seq}")
        tmp.write_bytes(payload)
        try:
            if graph is not None and arch is not None:
                # Full Tier-A validation: the document must re-bind to a
                # freshly built graph and pass every artifact rule.
                from repro.analysis import assert_valid, validate_solution_file

                assert_valid(validate_solution_file(tmp, graph, arch))
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, path)
        registry = get_registry()
        with self._lock:
            self._access_seq += 1
            self._entries[fingerprint] = StoreEntry(
                fingerprint=fingerprint,
                size_bytes=len(payload),
                sha256=hashlib.sha256(payload).hexdigest(),
                workload=str(doc.get("workload", "")),
                total_cycles=int(doc["metrics"]["total_cycles"]),
                created_seq=self._access_seq,
                last_access=self._access_seq,
                hits=0,
            )
            registry.counter("store.writes").inc()
            if self.capacity_bytes is not None:
                self._evict_to(self.capacity_bytes)
            self._save_index()
            registry.gauge("store.bytes").set(self.total_bytes)
        return payload

    def get(self, fingerprint: str) -> bytes | None:
        """The byte-exact stored document, or None on miss.

        A stored object whose content digest or document shape no longer
        checks out is dropped (counted as ``store.corrupt``) and
        reported as a miss — corruption can cost a recompute, never a
        wrong answer.
        """
        registry = get_registry()
        with self._lock:
            self._object_path(fingerprint)  # reject malformed keys loudly
            entry = self._entries.get(fingerprint)
            if entry is None:
                registry.counter("store.misses").inc()
                return None
            try:
                payload = self._object_path(fingerprint).read_bytes()
            except OSError:
                payload = None
            problem = None
            if payload is None:
                problem = "object file unreadable"
            elif hashlib.sha256(payload).hexdigest() != entry.sha256:
                problem = "content digest mismatch"
            else:
                try:
                    problem = check_solution_document(json.loads(payload))
                except ValueError:
                    problem = "object is not valid JSON"
            if problem is not None:
                _log.warning(
                    "dropping corrupt store entry %s: %s", fingerprint, problem
                )
                self._drop(fingerprint)
                self._save_index()
                registry.counter("store.corrupt").inc()
                registry.counter("store.misses").inc()
                return None
            self._access_seq += 1
            self._entries[fingerprint] = StoreEntry(
                **{
                    **entry.to_dict(),
                    "fingerprint": fingerprint,
                    "last_access": self._access_seq,
                    "hits": entry.hits + 1,
                }
            )
            self._save_index()
            registry.counter("store.hits").inc()
            return payload

    def _drop(self, fingerprint: str) -> None:
        self._entries.pop(fingerprint, None)
        self._object_path(fingerprint).unlink(missing_ok=True)

    def _evict_to(self, max_bytes: int) -> list[str]:
        """Evict least-recently-accessed entries until under the cap."""
        evicted: list[str] = []
        by_lru = sorted(self._entries.values(), key=lambda e: e.last_access)
        total = self.total_bytes
        for entry in by_lru:
            if total <= max_bytes:
                break
            self._drop(entry.fingerprint)
            total -= entry.size_bytes
            evicted.append(entry.fingerprint)
        if evicted:
            get_registry().counter("store.evictions").inc(len(evicted))
            _log.info("evicted %d store entr(ies)", len(evicted))
        return evicted

    def gc(self, max_bytes: int) -> list[str]:
        """Explicitly evict down to ``max_bytes``; returns evicted keys."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        with self._lock:
            evicted = self._evict_to(max_bytes)
            self._save_index()
            get_registry().gauge("store.bytes").set(self.total_bytes)
        return evicted

    def ls(self) -> list[StoreEntry]:
        """Every entry, most recently accessed first."""
        with self._lock:
            return sorted(
                self._entries.values(),
                key=lambda e: e.last_access,
                reverse=True,
            )

    def info(self, fingerprint: str) -> StoreEntry | None:
        """Index metadata of one entry (no access-sequence bump)."""
        with self._lock:
            return self._entries.get(fingerprint)


__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "SolutionStore",
    "StoreEntry",
    "StoreError",
    "check_solution_document",
]
