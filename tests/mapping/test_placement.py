"""Tests for atom-engine mapping strategies."""

from repro.mapping import (
    optimized_placement,
    placement_transfer_cost,
    zigzag_placement,
)
from repro.noc import Mesh2D
from repro.scheduling import schedule_greedy


class TestZigzagPlacement:
    def test_every_atom_placed(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        placement = zigzag_placement(chain_dag, mesh, schedule)
        assert set(placement) == set(range(chain_dag.num_atoms))

    def test_round_atoms_on_distinct_engines(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        placement = zigzag_placement(chain_dag, mesh, schedule)
        for rnd in schedule.rounds:
            engines = [placement[a] for a in rnd.atom_indices]
            assert len(set(engines)) == len(engines)

    def test_slots_follow_zigzag_order(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        placement = zigzag_placement(chain_dag, mesh, schedule)
        order = mesh.zigzag_order()
        first = schedule.rounds[0]
        for slot, a in enumerate(first.atom_indices):
            assert placement[a] == order[slot]


class TestOptimizedPlacement:
    def test_every_atom_placed_once(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        placement = optimized_placement(chain_dag, mesh, schedule)
        assert set(placement) == set(range(chain_dag.num_atoms))
        for rnd in schedule.rounds:
            engines = [placement[a] for a in rnd.atom_indices]
            assert len(set(engines)) == len(engines)

    def test_not_worse_than_zigzag(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        zz = zigzag_placement(chain_dag, mesh, schedule)
        opt = optimized_placement(chain_dag, mesh, schedule)
        assert placement_transfer_cost(
            chain_dag, mesh, schedule, opt
        ) <= placement_transfer_cost(chain_dag, mesh, schedule, zz)

    def test_chain_alignment_gives_local_reuse(self, chain_dag):
        # On a 1:1 pointwise chain the optimizer should keep consumer tiles
        # on their producer's engine (zero-hop reuse) wherever possible.
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        opt = optimized_placement(chain_dag, mesh, schedule)
        local = 0
        remote = 0
        for i in range(chain_dag.num_atoms):
            for p in chain_dag.preds[i]:
                if opt[p] == opt[i]:
                    local += chain_dag.edge_bytes[(p, i)]
                else:
                    remote += chain_dag.edge_bytes[(p, i)]
        assert local >= remote


class TestPlacementTransferCost:
    def test_zero_for_single_engine_mesh(self, chain_dag):
        mesh = Mesh2D(1, 1)
        schedule = schedule_greedy(chain_dag, 1)
        placement = zigzag_placement(chain_dag, mesh, schedule)
        # Single engine: everything local; only the flat DRAM penalty for
        # first-touch weights remains.
        cost = placement_transfer_cost(chain_dag, mesh, schedule, placement)
        from repro.mapping.transfer_cost import DRAM_HOP_PENALTY

        assert cost >= 0
