"""Tests for the TransferCost(P) objective."""

import random

import pytest

from repro.mapping import round_transfer_cost
from repro.mapping.transfer_cost import DRAM_HOP_PENALTY, round_cost_matrix
from repro.noc import Mesh2D, Torus2D
from repro.scheduling import schedule_greedy


def _first_consumer_round(dag, schedule):
    """First round containing atoms with on-chip predecessors."""
    done: dict[int, int] = {}
    for rnd in schedule.rounds:
        if any(dag.preds[a] for a in rnd.atom_indices):
            return rnd, done
        for a in rnd.atom_indices:
            done[a] = 0
    raise AssertionError("no dependent round found")


class TestRoundTransferCost:
    def test_local_placement_costs_nothing(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        # Place every predecessor on engine 0 and every consumer on 0 too.
        placement = {p: 0 for a in rnd.atom_indices for p in chain_dag.preds[a]}
        cost = round_transfer_cost(
            chain_dag, mesh, placement, rnd.atom_indices,
            tuple(0 for _ in rnd.atom_indices),
        )
        assert cost == 0

    def test_distance_scales_cost(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        placement = {p: 0 for a in rnd.atom_indices for p in chain_dag.preds[a]}
        near = round_transfer_cost(
            chain_dag, mesh, placement, rnd.atom_indices,
            tuple(1 for _ in rnd.atom_indices),  # 1 hop from engine 0
        )
        far = round_transfer_cost(
            chain_dag, mesh, placement, rnd.atom_indices,
            tuple(3 for _ in rnd.atom_indices),  # 2 hops from engine 0
        )
        assert far == 2 * near

    def test_unplaced_predecessor_charged_dram_penalty(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        bytes_in = sum(
            chain_dag.edge_bytes[(p, a)]
            for a in rnd.atom_indices
            for p in chain_dag.preds[a]
        )
        cost = round_transfer_cost(
            chain_dag, mesh, {}, rnd.atom_indices,
            tuple(0 for _ in rnd.atom_indices),
        )
        assert cost == DRAM_HOP_PENALTY * bytes_in

    def test_dram_penalty_position_independent(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        at0 = round_transfer_cost(
            chain_dag, mesh, {}, rnd.atom_indices,
            tuple(0 for _ in rnd.atom_indices),
        )
        at3 = round_transfer_cost(
            chain_dag, mesh, {}, rnd.atom_indices,
            tuple(3 for _ in rnd.atom_indices),
        )
        assert at0 == at3

    def test_weight_home_attracts(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd = schedule.rounds[0]
        atom = rnd.atom_indices[0]
        wk = chain_dag.weight_key(atom)
        assert wk is not None
        home_cost = round_transfer_cost(
            chain_dag, mesh, {}, (atom,), (2,), weight_home={wk: 2}
        )
        away_cost = round_transfer_cost(
            chain_dag, mesh, {}, (atom,), (1,), weight_home={wk: 2}
        )
        assert home_cost < away_cost


class TestRoundCostMatrixEquivalence:
    """The matrix form must price any ordering like the direct walk.

    The placement search evaluates every candidate (zig-zag, greedy, layer
    permutations) as a gather over one per-Round cost matrix; that is only
    sound if ``sum(M[row_of[ordered[j]], j]) + const`` equals
    :func:`round_transfer_cost` for *every* ordering, placement, and
    weight-home state — including spilled (DRAM) predecessors and
    homeless weight slices.
    """

    @staticmethod
    def _rounds_with_placements(dag, rng, num_engines):
        """Yield (round_atoms, placement) pairs walking the schedule.

        Atoms of earlier Rounds are placed at random; some are left
        unplaced so the DRAM-spill constant is exercised too.
        """
        schedule = schedule_greedy(dag, 4)
        placement: dict[int, int] = {}
        for rnd in schedule.rounds:
            yield rnd.atom_indices, dict(placement)
            for a in rnd.atom_indices:
                if rng.random() < 0.75:
                    placement[a] = rng.randrange(num_engines)

    @staticmethod
    def _weight_home_variants(dag, atoms, rng, num_engines):
        partial = {}
        for a in atoms:
            wk = dag.weight_key(a)
            if wk is not None and rng.random() < 0.5:
                partial[wk] = rng.randrange(num_engines)
        return [None, {}, partial]

    @pytest.mark.parametrize("mesh", [Mesh2D(2, 2), Torus2D(2, 2)])
    def test_matrix_gather_matches_direct_cost(self, chain_dag, mesh):
        rng = random.Random(7)
        n = mesh.num_engines
        rounds = self._rounds_with_placements(chain_dag, rng, n)
        for atoms, placement in rounds:
            slots = tuple(rng.randrange(n) for _ in atoms)
            row_of = {a: i for i, a in enumerate(atoms)}
            for home in self._weight_home_variants(chain_dag, atoms, rng, n):
                matrix, const = round_cost_matrix(
                    chain_dag, mesh, placement, atoms, slots, home
                )
                for _ in range(4):
                    ordered = list(atoms)
                    rng.shuffle(ordered)
                    gathered = const + sum(
                        int(matrix[row_of[a], j])
                        for j, a in enumerate(ordered)
                    )
                    direct = round_transfer_cost(
                        chain_dag, mesh, placement,
                        tuple(ordered), slots, home,
                    )
                    assert gathered == direct

    def test_identity_ordering_is_plain_diagonal(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        placement = {
            a: (a * 7) % mesh.num_engines
            for rnd in schedule.rounds[:-1]
            for a in rnd.atom_indices
        }
        atoms = schedule.rounds[-1].atom_indices
        slots = tuple((i + 1) % mesh.num_engines for i in range(len(atoms)))
        matrix, const = round_cost_matrix(
            chain_dag, mesh, placement, atoms, slots
        )
        diagonal = const + int(matrix.diagonal().sum())
        assert diagonal == round_transfer_cost(
            chain_dag, mesh, placement, atoms, slots
        )
