"""Tests for the TransferCost(P) objective."""

from repro.mapping import round_transfer_cost
from repro.mapping.transfer_cost import DRAM_HOP_PENALTY
from repro.noc import Mesh2D
from repro.scheduling import schedule_greedy


def _first_consumer_round(dag, schedule):
    """First round containing atoms with on-chip predecessors."""
    done: dict[int, int] = {}
    for rnd in schedule.rounds:
        if any(dag.preds[a] for a in rnd.atom_indices):
            return rnd, done
        for a in rnd.atom_indices:
            done[a] = 0
    raise AssertionError("no dependent round found")


class TestRoundTransferCost:
    def test_local_placement_costs_nothing(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        # Place every predecessor on engine 0 and every consumer on 0 too.
        placement = {p: 0 for a in rnd.atom_indices for p in chain_dag.preds[a]}
        cost = round_transfer_cost(
            chain_dag, mesh, placement, rnd.atom_indices,
            tuple(0 for _ in rnd.atom_indices),
        )
        assert cost == 0

    def test_distance_scales_cost(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        placement = {p: 0 for a in rnd.atom_indices for p in chain_dag.preds[a]}
        near = round_transfer_cost(
            chain_dag, mesh, placement, rnd.atom_indices,
            tuple(1 for _ in rnd.atom_indices),  # 1 hop from engine 0
        )
        far = round_transfer_cost(
            chain_dag, mesh, placement, rnd.atom_indices,
            tuple(3 for _ in rnd.atom_indices),  # 2 hops from engine 0
        )
        assert far == 2 * near

    def test_unplaced_predecessor_charged_dram_penalty(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        bytes_in = sum(
            chain_dag.edge_bytes[(p, a)]
            for a in rnd.atom_indices
            for p in chain_dag.preds[a]
        )
        cost = round_transfer_cost(
            chain_dag, mesh, {}, rnd.atom_indices,
            tuple(0 for _ in rnd.atom_indices),
        )
        assert cost == DRAM_HOP_PENALTY * bytes_in

    def test_dram_penalty_position_independent(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd, _ = _first_consumer_round(chain_dag, schedule)
        at0 = round_transfer_cost(
            chain_dag, mesh, {}, rnd.atom_indices,
            tuple(0 for _ in rnd.atom_indices),
        )
        at3 = round_transfer_cost(
            chain_dag, mesh, {}, rnd.atom_indices,
            tuple(3 for _ in rnd.atom_indices),
        )
        assert at0 == at3

    def test_weight_home_attracts(self, chain_dag):
        mesh = Mesh2D(2, 2)
        schedule = schedule_greedy(chain_dag, 4)
        rnd = schedule.rounds[0]
        atom = rnd.atom_indices[0]
        wk = chain_dag.weight_key(atom)
        assert wk is not None
        home_cost = round_transfer_cost(
            chain_dag, mesh, {}, (atom,), (2,), weight_home={wk: 2}
        )
        away_cost = round_transfer_cost(
            chain_dag, mesh, {}, (atom,), (1,), weight_home={wk: 2}
        )
        assert home_cost < away_cost
