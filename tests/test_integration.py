"""End-to-end integration tests: the paper's qualitative claims, in miniature.

Each test runs the full pipeline (model -> fusion -> atoms -> schedule ->
mapping -> simulation) on reduced workloads and asserts the *shape* of the
paper's results: who wins, and in which metric.
"""

import pytest

from repro import AtomicDataflowOptimizer, OptimizerOptions
from repro.atoms.generation import SAParams
from repro.baselines import (
    ideal_result,
    ls_utilization_report,
    run_cnn_partition,
    run_il_pipe,
    run_layer_sequential,
    run_rammer,
)
from repro.config import ArchConfig
from repro.models import get_model, inception_v3, resnet50

ARCH = ArchConfig(mesh_rows=4, mesh_cols=4)
FAST = OptimizerOptions(scheduler="greedy", sa_params=SAParams(max_iterations=120))


@pytest.fixture(scope="module")
def resnet():
    return get_model("resnet50_bench")


@pytest.fixture(scope="module")
def ad_result(resnet):
    return AtomicDataflowOptimizer(resnet, ARCH, FAST).optimize().result


class TestLatencyClaims:
    """Fig. 8: AD achieves the lowest batch-1 latency."""

    def test_ad_beats_ls(self, resnet, ad_result):
        ls = run_layer_sequential(resnet, ARCH)
        assert ad_result.total_cycles < ls.total_cycles

    def test_ad_beats_il_pipe(self, resnet, ad_result):
        ilp = run_il_pipe(resnet, ARCH)
        assert ad_result.total_cycles < ilp.total_cycles

    def test_ad_above_ideal(self, resnet, ad_result):
        ideal = ideal_result(resnet, ARCH)
        assert ad_result.total_cycles >= ideal.total_cycles


class TestUtilizationClaims:
    """Fig. 2 / Table II: LS under-utilizes; AD utilizes well."""

    def test_ls_layer_average_is_low(self, resnet):
        rep = ls_utilization_report(resnet, ARCH)
        assert rep.average < 0.5

    def test_ad_utilization_beats_ls(self, resnet, ad_result):
        ls = run_layer_sequential(resnet, ARCH)
        assert ad_result.pe_utilization > ls.pe_utilization

    def test_ad_noc_overhead_moderate(self, ad_result):
        # Table II: NoC overhead 9.4-17.6%; allow a wider reduced-scale band.
        assert ad_result.noc_overhead_fraction < 0.35


class TestReuseClaims:
    """Table II: AD reuses the majority of data on-chip."""

    def test_ad_onchip_reuse_substantial(self, ad_result):
        assert ad_result.onchip_reuse_ratio > 0.5

    def test_cnnp_reuses_nothing(self, resnet):
        r = run_cnn_partition(resnet, ARCH, batch=4, num_clps=2)
        assert r.onchip_reuse_ratio == 0.0


class TestThroughputClaims:
    """Fig. 9: with batching, AD > CNN-P > LS."""

    @pytest.fixture(scope="class")
    def batched(self, resnet):
        opts = OptimizerOptions(
            scheduler="greedy", batch=2, sa_params=SAParams(max_iterations=30)
        )
        ad = AtomicDataflowOptimizer(resnet, ARCH, opts).optimize().result
        cnnp = run_cnn_partition(resnet, ARCH, batch=2)
        ls = run_layer_sequential(resnet, ARCH, batch=2)
        return ad, cnnp, ls

    def test_ordering(self, batched):
        ad, cnnp, ls = batched
        assert ad.throughput_fps > cnnp.throughput_fps > ls.throughput_fps


class TestEnergyClaims:
    """Fig. 11: AD and IL-Pipe are the energy-efficient strategies."""

    def test_ad_much_cheaper_than_ls(self, resnet, ad_result):
        ls = run_layer_sequential(resnet, ARCH)
        assert ad_result.energy.total_pj < ls.energy.total_pj

    def test_il_pipe_energy_competitive_with_ad(self, resnet, ad_result):
        ilp = run_il_pipe(resnet, ARCH)
        # IL-Pipe may beat AD on energy (paper: first 3 workloads) but is
        # in the same regime, not an order of magnitude apart.
        assert ilp.energy.total_pj < 3 * ad_result.energy.total_pj


class TestIrregularTopologies:
    """The framework must handle branching/NAS graphs (Sec. III claim)."""

    @pytest.mark.parametrize(
        "name", ["inception_v3_bench", "nasnet_bench", "efficientnet_bench"]
    )
    def test_runs_on_irregular_nets(self, name):
        g = get_model(name)
        opts = OptimizerOptions(
            scheduler="greedy", sa_params=SAParams(max_iterations=10)
        )
        outcome = AtomicDataflowOptimizer(g, ARCH, opts).optimize()
        outcome.schedule.validate(outcome.dag, ARCH.num_engines)
        assert outcome.result.total_cycles > 0

    def test_rammer_between_ls_and_ad_on_branching(self):
        g = inception_v3(input_size=107)
        ls = run_layer_sequential(g, ARCH)
        ram = run_rammer(g, ARCH)
        assert ram.total_cycles <= ls.total_cycles * 1.02
