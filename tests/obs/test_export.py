"""Tests for the Chrome trace / flamegraph / metrics-table exporters."""

import json

import pytest

from repro.obs.export import (
    SIM_PID,
    chrome_trace_events,
    flamegraph_summary,
    metrics_summary,
    trace_to_chrome,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord


def make_span(
    name,
    start,
    dur,
    span_id,
    parent=0,
    pid=100,
    tid=1,
    category="search",
    **args,
):
    return SpanRecord(
        name=name,
        category=category,
        start_us=start,
        duration_us=dur,
        pid=pid,
        tid=tid,
        span_id=span_id,
        parent_id=parent,
        args=tuple(sorted(args.items())),
    )


@pytest.fixture
def spans():
    return [
        make_span("optimize", 10.0, 100.0, 1, candidates=3),
        make_span("search.phase", 20.0, 40.0, 2, parent=1),
        make_span("search.phase", 60.0, 40.0, 3, parent=1),
        make_span("executor.attempt", 25.0, 30.0, 4, pid=101,
                  category="resilience"),
    ]


def begins_and_ends(events):
    return (
        [e for e in events if e["ph"] == "B"],
        [e for e in events if e["ph"] == "E"],
    )


class TestChromeEvents:
    def test_b_e_pairs_match_per_lane(self, spans):
        events = chrome_trace_events(spans)
        begins, ends = begins_and_ends(events)
        assert len(begins) == len(ends) == len(spans)
        # Per (pid, tid) lane the stream must be stack-valid.
        stacks = {}
        for e in events:
            if e["ph"] == "B":
                stacks.setdefault((e["pid"], e["tid"]), []).append(e["name"])
            elif e["ph"] == "E":
                assert stacks[(e["pid"], e["tid"])].pop() == e["name"]
        assert all(not s for s in stacks.values())

    def test_timestamps_monotonic_and_rebased(self, spans):
        events = chrome_trace_events(spans)
        ts = [e["ts"] for e in events if e["ph"] in "BE"]
        assert ts == sorted(ts)
        assert min(ts) == 0.0  # earliest span rebased to ts=0

    def test_every_event_has_pid_and_tid(self, spans):
        for e in chrome_trace_events(spans):
            assert "pid" in e and "tid" in e

    def test_span_args_and_category_forwarded(self, spans):
        events = chrome_trace_events(spans)
        begin = next(e for e in events if e["name"] == "optimize")
        assert begin["cat"] == "search"
        assert begin["args"]["candidates"] == 3

    def test_json_round_trips(self, spans):
        events = chrome_trace_events(spans)
        assert json.loads(json.dumps(events)) == events

    def test_zero_length_span_stays_stack_valid(self):
        spans = [
            make_span("outer", 10.0, 0.0, 1),
            make_span("inner", 10.0, 0.0, 2, parent=1),
        ]
        events = chrome_trace_events(spans)
        order = [(e["ph"], e["name"]) for e in events if e["ph"] in "BE"]
        assert order == [
            ("B", "outer"), ("B", "inner"), ("E", "inner"), ("E", "outer"),
        ]


class TestTraceFile:
    def test_trace_to_chrome_writes_valid_json(self, spans, tmp_path):
        path = tmp_path / "trace.json"
        doc = trace_to_chrome(path, spans, metadata={"workload": "w"})
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["displayTimeUnit"] == "ms"
        assert on_disk["otherData"]["workload"] == "w"
        assert len(on_disk["traceEvents"]) >= 2 * len(spans)

    def test_timeline_view_lands_on_the_sim_pid(self, spans, tmp_path, arch_2x2):
        timeline = simulate_tiny_timeline(arch_2x2)
        doc = trace_to_chrome(tmp_path / "t.json", spans, timeline)
        sim_events = [
            e for e in doc["traceEvents"] if e["pid"] == SIM_PID
        ]
        assert any(e["ph"] == "X" for e in sim_events)
        assert any(e["ph"] == "C" for e in sim_events)


class TestTextSummaries:
    def test_flamegraph_aggregates_by_path(self, spans):
        text = flamegraph_summary(spans)
        assert "optimize" in text
        # The two sibling phases fold into one row with two calls.
        assert "search.phase" in text
        assert "  2  " in text or "2 " in text

    def test_flamegraph_empty(self):
        assert flamegraph_summary([]) == "(no spans recorded)"

    def test_metrics_summary_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("search.candidates").inc(3)
        reg.gauge("pool.size").set(4)
        reg.histogram("seconds").observe(0.5)
        text = metrics_summary(reg.snapshot())
        assert "search.candidates" in text
        assert "pool.size" in text
        assert "seconds" in text and "mean" in text


# -- helpers ----------------------------------------------------------------


@pytest.fixture
def arch_2x2():
    from repro.config import ArchConfig, EngineConfig

    return ArchConfig(
        mesh_rows=2,
        mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


def simulate_tiny_timeline(arch):
    from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
    from repro.engine import EngineCostModel, get_dataflow
    from repro.ir import GraphBuilder
    from repro.scheduling import schedule_greedy
    from repro.sim import simulate_timeline

    b = GraphBuilder(name="tiny")
    x = b.input(8, 8, 4)
    c1 = b.conv(x, 8, kernel=3, name="c1")
    b.conv(c1, 8, kernel=1, name="c2")
    g = b.build()
    cm = EngineCostModel(arch.engine, get_dataflow("kc"))
    dag = build_atomic_dag(g, uniform_tiling(g, TileSize(4, 8, 8, 8)), cm)
    schedule = schedule_greedy(dag, arch.num_engines)
    placement = {
        a: slot
        for rnd in schedule.rounds
        for slot, a in enumerate(rnd.atom_indices)
    }
    _, timeline = simulate_timeline(arch, dag, schedule, placement)
    return timeline
