"""Tests for the metrics registry: instruments, snapshots, merging."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    reset_registry,
)


@pytest.fixture(autouse=True)
def _fresh_global_registry():
    reset_registry()
    yield
    reset_registry()


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.snapshot().counters["c"] == 3.5

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(-4.0)
        assert reg.snapshot().gauges["g"] == -4.0

    def test_histogram_buckets_and_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.max == 50.0
        assert h.quantile(0.0) == 0.0
        # Half the samples sit in the first bucket, so the median is its
        # upper edge; the top quantile clamps to the observed max.
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 50.0
        assert h.mean == pytest.approx((0.5 + 0.7 + 5.0 + 50.0) / 4)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_cross_type_name_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestSnapshots:
    def test_to_dict_from_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap

    def test_malformed_dict_raises(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict({"counters": 3})

    def test_snapshot_and_reset_clears_values(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        snap = reg.snapshot_and_reset()
        assert snap.counters["c"] == 5
        assert reg.snapshot().counters["c"] == 0

    def test_merge_adds_counters_and_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(100.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap.counters["c"] == 5
        assert snap.gauges["g"] == 9.0
        assert snap.histograms["h"]["count"] == 2
        assert snap.histograms["h"]["max"] == 100.0

    def test_merge_mismatched_histogram_bounds_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(5.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


class TestGlobals:
    def test_get_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_reset_registry_discards_values(self):
        get_registry().counter("c").inc()
        reset_registry()
        assert "c" not in get_registry().snapshot().counters
