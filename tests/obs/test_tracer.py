"""Tests for the span tracer: nesting, ids, enable/disable, hand-off."""

import pickle
import threading

import pytest

from repro.obs.tracer import (
    SpanRecord,
    Tracer,
    _NOOP_SPAN,
    absorb_observations,
    disable_tracing,
    drain_observations,
    enable_tracing,
    ensure_tracing,
    get_tracer,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _reset_tracing():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert not get_tracer().enabled

    def test_noop_span_is_a_shared_singleton(self):
        a = get_tracer().span("x")
        b = get_tracer().span("y", category="sim", index=3)
        assert a is b is _NOOP_SPAN

    def test_noop_span_records_nothing(self):
        with span("x", category="sim"):
            pass
        spans, metrics = drain_observations()
        assert spans == []


class TestRecording:
    def test_nesting_sets_parent_ids(self):
        enable_tracing()
        with span("outer") as outer:
            with span("inner"):
                pass
        records = {r.name: r for r in get_tracer().drain()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id == 0
        assert outer.span_id == records["outer"].span_id

    def test_sibling_spans_share_a_parent(self):
        enable_tracing()
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        records = {r.name: r for r in get_tracer().drain()}
        assert records["a"].parent_id == records["root"].span_id
        assert records["b"].parent_id == records["root"].span_id

    def test_span_ids_unique_across_threads(self):
        enable_tracing()

        def work():
            for _ in range(50):
                with span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = get_tracer().drain()
        assert len(records) == 200
        assert len({r.span_id for r in records}) == 200

    def test_thread_stacks_are_independent(self):
        enable_tracing()
        seen = []

        def work():
            with span("child"):
                pass
            seen.append(True)

        with span("main-root"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        records = {r.name: r for r in get_tracer().drain()}
        # The other thread's span must not adopt this thread's open span.
        assert records["child"].parent_id == 0
        assert seen == [True]

    def test_durations_are_nonnegative_and_ordered(self):
        enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        records = {r.name: r for r in get_tracer().drain()}
        assert records["inner"].duration_us >= 0
        assert records["outer"].duration_us >= records["inner"].duration_us
        assert records["outer"].start_us <= records["inner"].start_us

    def test_args_are_sorted_pairs(self):
        enable_tracing()
        with span("x", b=2, a=1):
            pass
        (rec,) = get_tracer().drain()
        assert rec.args == (("a", 1), ("b", 2))


class TestLifecycle:
    def test_enable_returns_recording_tracer(self):
        tracer = enable_tracing()
        assert tracer.enabled and tracing_enabled()
        assert isinstance(tracer, Tracer)

    def test_ensure_keeps_an_already_active_tracer(self):
        first = enable_tracing()
        with span("kept"):
            pass
        second = ensure_tracing()
        assert second is first
        assert [r.name for r in get_tracer().spans] == ["kept"]

    def test_ensure_enables_when_disabled(self):
        assert not tracing_enabled()
        ensure_tracing()
        assert tracing_enabled()

    def test_disable_discards_the_recorder(self):
        enable_tracing()
        with span("x"):
            pass
        disable_tracing()
        assert get_tracer().drain() == []


class TestHandOff:
    def test_drain_then_absorb_round_trips(self):
        enable_tracing()
        with span("shipped", category="sim"):
            pass
        spans, metrics = drain_observations()
        assert [s.name for s in spans] == ["shipped"]
        assert get_tracer().spans == ()
        # Simulate the parent side: absorb what the worker drained.
        absorb_observations(spans, metrics)
        assert [s.name for s in get_tracer().spans] == ["shipped"]

    def test_records_pickle(self):
        enable_tracing()
        with span("x", index=7):
            pass
        spans, _ = drain_observations()
        assert pickle.loads(pickle.dumps(spans)) == spans

    def test_record_dict_round_trip(self):
        rec = SpanRecord(
            name="n", category="sim", start_us=1.0, duration_us=2.0,
            pid=1, tid=2, span_id=3, parent_id=0, args=(("k", "v"),),
        )
        assert SpanRecord.from_dict(rec.to_dict()) == rec

    def test_malformed_record_raises(self):
        with pytest.raises(ValueError):
            SpanRecord.from_dict({"name": "x"})
