"""Tests for the Prometheus text exposition (render + parse + races)."""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)

GOLDEN = Path(__file__).parent.parent / "fixtures" / "prometheus_golden.txt"


def sample_registry() -> MetricsRegistry:
    """The deterministic registry behind the golden-file test."""
    reg = MetricsRegistry()
    reg.counter("service.searches").inc(3)
    reg.counter("9starts.with-digit").inc()
    reg.gauge("queue.depth").set(2)
    h = reg.histogram("service.latency.e2e", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    reg.histogram("service.latency.cache_hit", buckets=(0.1, 1.0, 10.0))
    return reg


class TestSanitization:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("service.latency.e2e") == (
            "service_latency_e2e"
        )

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_legal_names_pass_through(self):
        assert sanitize_metric_name("a_b:c123") == "a_b:c123"

    def test_dashes_and_spaces(self):
        assert sanitize_metric_name("a-b c") == "a_b_c"


class TestRender:
    def test_matches_golden_file(self):
        rendered = render_prometheus(sample_registry().snapshot())
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_buckets_are_cumulative_and_inf_equals_count(self):
        page = render_prometheus(sample_registry().snapshot())
        buckets = []
        for line in page.splitlines():
            if line.startswith("service_latency_e2e_bucket"):
                buckets.append(float(line.rsplit(" ", 1)[1]))
            if line.startswith("service_latency_e2e_count"):
                count = float(line.rsplit(" ", 1)[1])
        assert buckets == sorted(buckets), "bucket counts must be cumulative"
        assert buckets[-1] == count, '+Inf bucket must equal _count'

    def test_every_family_has_type_and_help(self):
        page = render_prometheus(sample_registry().snapshot())
        lines = page.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                assert lines[i - 1].startswith("# HELP ")

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestRoundTrip:
    def test_scraped_page_parses_back_to_same_totals(self):
        snapshot = sample_registry().snapshot()
        parsed = parse_prometheus(render_prometheus(snapshot))
        assert parsed.counters == snapshot.counters
        assert parsed.gauges == snapshot.gauges
        assert set(parsed.histograms) == set(snapshot.histograms)
        for name, state in snapshot.histograms.items():
            got = parsed.histograms[name]
            # max is not representable in the exposition format, so the
            # round-trip contract covers totals, bounds, and counts.
            assert got["count"] == state["count"]
            assert got["sum"] == pytest.approx(state["sum"])
            assert tuple(got["bounds"]) == tuple(state["bounds"])
            assert list(got["counts"]) == list(state["counts"])

    def test_garbage_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not a metric line")


class TestScrapeVsMergeRace:
    def test_concurrent_scrapes_see_whole_merges(self):
        """8 scraper threads race worker merges; every page is coherent.

        The regression this pins: ``MetricsRegistry.merge`` folding a
        worker snapshot bucket-by-bucket outside the lock let a scrape
        observe a histogram whose bucket counts did not sum to its
        ``count``.
        """
        reg = MetricsRegistry()

        worker = MetricsRegistry()
        worker.counter("service.searches").inc()
        wh = worker.histogram("service.latency.e2e", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            wh.observe(v)
        worker_snapshot = worker.snapshot()

        rounds = 200
        stop = threading.Event()
        problems: list[str] = []

        def merger():
            for _ in range(rounds):
                reg.merge(worker_snapshot)

        def scraper():
            while not stop.is_set():
                page = render_prometheus(reg.snapshot())
                if not page:
                    continue
                parsed = parse_prometheus(page)
                for name, state in parsed.histograms.items():
                    if sum(state["counts"]) != state["count"]:
                        problems.append(
                            f"{name}: buckets sum to "
                            f"{sum(state['counts'])}, count says "
                            f"{state['count']}"
                        )
                searches = parsed.counters.get("service.searches", 0)
                e2e = parsed.histograms.get("service.latency.e2e", {})
                if e2e and e2e["count"] != 3 * searches:
                    problems.append(
                        f"torn merge visible: {searches} merges but "
                        f"{e2e['count']} observations"
                    )

        scrapers = [threading.Thread(target=scraper) for _ in range(8)]
        mergers = [threading.Thread(target=merger) for _ in range(2)]
        for t in scrapers + mergers:
            t.start()
        for t in mergers:
            t.join()
        stop.set()
        for t in scrapers:
            t.join()
        assert not problems, problems[:5]
        final = reg.snapshot()
        assert final.counters["service.searches"] == 2 * rounds
        assert final.histograms["service.latency.e2e"]["count"] == 6 * rounds
