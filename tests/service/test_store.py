"""SolutionStore: content addressing, integrity, LRU eviction."""

from __future__ import annotations

import json

import pytest

from repro.fingerprint import request_fingerprint
from repro.framework import AtomicDataflowOptimizer
from repro.models import get_model
from repro.obs import get_registry
from repro.serialize import canonical_solution_bytes, solution_to_dict
from repro.service import SolutionStore
from repro.service.store import StoreError, check_solution_document


@pytest.fixture(scope="module")
def solved(tmp_path_factory):
    """One real solved workload shared by every test in this module."""
    from repro.atoms.generation import SAParams
    from repro.config import ArchConfig
    from repro.framework import OptimizerOptions

    arch = ArchConfig(mesh_rows=4, mesh_cols=4)
    options = OptimizerOptions(sa_params=SAParams(max_iterations=8), seed=3)
    graph = get_model("mobilenet_v2_bench")
    outcome = AtomicDataflowOptimizer(graph, arch, options).optimize()
    doc = solution_to_dict(outcome, options.dataflow, include_search=False)
    fp = request_fingerprint(graph, arch, options)
    return graph, arch, doc, fp


def _fake_doc(doc: dict, workload: str, cycles: int) -> dict:
    clone = json.loads(json.dumps(doc))
    clone["workload"] = workload
    clone["metrics"]["total_cycles"] = cycles
    return clone


class TestPutGet:
    def test_round_trip_byte_exact(self, tmp_path, solved):
        graph, arch, doc, fp = solved
        store = SolutionStore(tmp_path / "store")
        written = store.put(fp, doc, graph=graph, arch=arch)
        assert store.get(fp) == written
        assert written == canonical_solution_bytes(doc)

    def test_search_section_stripped(self, tmp_path, solved):
        graph, arch, doc, fp = solved
        store = SolutionStore(tmp_path / "store")
        noisy = dict(doc, search={"seconds": 1.23})
        assert b"search" not in store.put(fp, noisy, graph=graph, arch=arch)

    def test_miss_returns_none(self, tmp_path):
        store = SolutionStore(tmp_path / "store")
        assert store.get("ab" * 32) is None
        assert get_registry().counter("store.misses").value == 1

    def test_rejects_invalid_fingerprint(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.put("../escape", doc)
        with pytest.raises(StoreError):
            store.get("NOT-HEX")

    def test_rejects_malformed_document(self, tmp_path):
        store = SolutionStore(tmp_path / "store")
        with pytest.raises(StoreError, match="invalid solution"):
            store.put("ab" * 32, {"format": "wrong"})

    def test_write_validation_rejects_mismatched_graph(self, tmp_path, solved):
        graph, arch, doc, fp = solved
        from repro.analysis import ArtifactValidationError

        store = SolutionStore(tmp_path / "store")
        other = get_model("vgg19_bench")
        with pytest.raises((ArtifactValidationError, KeyError, ValueError)):
            store.put(fp, doc, graph=other, arch=arch)
        assert fp not in store  # failed put leaves no trace

    def test_corrupt_object_dropped_on_read(self, tmp_path, solved):
        graph, arch, doc, fp = solved
        store = SolutionStore(tmp_path / "store")
        store.put(fp, doc, graph=graph, arch=arch)
        obj = tmp_path / "store" / "objects" / f"{fp}.json"
        payload = bytearray(obj.read_bytes())
        payload[10] ^= 0xFF
        obj.write_bytes(bytes(payload))
        assert store.get(fp) is None
        assert fp not in store
        assert get_registry().counter("store.corrupt").value == 1

    def test_hit_counters_and_metadata(self, tmp_path, solved):
        graph, arch, doc, fp = solved
        store = SolutionStore(tmp_path / "store")
        store.put(fp, doc, graph=graph, arch=arch)
        store.get(fp)
        store.get(fp)
        entry = store.info(fp)
        assert entry.hits == 2
        assert entry.workload == doc["workload"]
        assert entry.total_cycles == doc["metrics"]["total_cycles"]
        assert get_registry().counter("store.hits").value == 2


class TestEviction:
    def _fill(self, store, doc, n):
        fps = []
        for i in range(n):
            fp = f"{i:02x}" * 32
            store.put(fp, _fake_doc(doc, f"w{i}", 1000 + i))
            fps.append(fp)
        return fps

    def test_gc_evicts_lru_first(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        fps = self._fill(store, doc, 3)
        store.get(fps[0])  # 0 is now most recently used
        size = store.info(fps[0]).size_bytes
        evicted = store.gc(2 * size + 10)
        assert evicted == [fps[1]]  # oldest access went first
        assert fps[0] in store and fps[2] in store

    def test_gc_to_zero_empties(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        self._fill(store, doc, 3)
        store.gc(0)
        assert len(store) == 0
        assert store.total_bytes == 0
        assert not list((tmp_path / "store" / "objects").glob("*.json"))

    def test_capacity_enforced_on_put(self, tmp_path, solved):
        *_, doc, _ = solved
        probe = SolutionStore(tmp_path / "probe")
        probe.put("ab" * 32, _fake_doc(doc, "probe", 1))
        size = probe.info("ab" * 32).size_bytes
        store = SolutionStore(tmp_path / "store", capacity_bytes=2 * size + 10)
        self._fill(store, doc, 4)
        assert len(store) <= 2
        assert store.total_bytes <= 2 * size + 10
        assert get_registry().counter("store.evictions").value >= 2


class TestPersistence:
    def test_reopen_preserves_entries_and_lru(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        fps = [f"{i:02x}" * 32 for i in range(2)]
        for i, fp in enumerate(fps):
            store.put(fp, _fake_doc(doc, f"w{i}", i))
        store.get(fps[0])
        reopened = SolutionStore(tmp_path / "store")
        assert len(reopened) == 2
        order = [e.fingerprint for e in reopened.ls()]
        assert order[0] == fps[0]  # most recently used first

    def test_corrupt_index_rebuilt_from_objects(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        fp = "ab" * 32
        store.put(fp, _fake_doc(doc, "w", 7))
        (tmp_path / "store" / "index.json").write_text("{ not json")
        rebuilt = SolutionStore(tmp_path / "store")
        assert fp in rebuilt
        assert rebuilt.get(fp) is not None

    def test_ls_and_info(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        assert store.ls() == []
        assert store.info("ab" * 32) is None
        store.put("ab" * 32, _fake_doc(doc, "w", 7))
        assert [e.fingerprint for e in store.ls()] == ["ab" * 32]


class TestTornWrites:
    """Crash-truncated files: the index rebuilds, objects become misses."""

    def test_torn_index_tail_rebuilds_from_objects(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        fps = [f"{i:02x}" * 32 for i in range(3)]
        for i, fp in enumerate(fps):
            store.put(fp, _fake_doc(doc, f"w{i}", 1000 + i))
        index = tmp_path / "store" / "index.json"
        payload = index.read_bytes()
        index.write_bytes(payload[: len(payload) // 2])  # the torn write
        rebuilt = SolutionStore(tmp_path / "store")
        assert len(rebuilt) == 3
        for fp in fps:
            assert rebuilt.get(fp) is not None

    def test_rebuilt_index_eviction_order_is_deterministic(
        self, tmp_path, solved
    ):
        """Two identical rebuilds gc in the same order (re-sequenced by
        sorted fingerprint, never by wall clock)."""
        *_, doc, _ = solved
        orders = []
        for run in ("a", "b"):
            store = SolutionStore(tmp_path / run)
            for i in range(3):
                store.put(f"{i:02x}" * 32, _fake_doc(doc, f"w{i}", 1000 + i))
            (tmp_path / run / "index.json").write_text("{ torn")
            rebuilt = SolutionStore(tmp_path / run)
            size = rebuilt.info("00" * 32).size_bytes
            orders.append(rebuilt.gc(size + 10))
        assert orders[0] == orders[1]
        assert orders[0] == [f"{i:02x}" * 32 for i in range(2)]

    def test_torn_object_tail_is_a_miss(self, tmp_path, solved):
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        fp = "ab" * 32
        store.put(fp, _fake_doc(doc, "w", 7))
        obj = tmp_path / "store" / "objects" / f"{fp}.json"
        payload = obj.read_bytes()
        obj.write_bytes(payload[: len(payload) - 5])  # truncated tail
        assert store.get(fp) is None  # digest mismatch, never a wrong answer
        assert fp not in store
        assert get_registry().counter("store.corrupt").value == 1

    def test_stale_staging_files_are_not_indexed(self, tmp_path, solved):
        """A crash can leave `.tmpN` staging files behind; a rebuild
        must not mistake them for objects."""
        *_, doc, _ = solved
        store = SolutionStore(tmp_path / "store")
        fp = "ab" * 32
        store.put(fp, _fake_doc(doc, "w", 7))
        stale = tmp_path / "store" / "objects" / f"{'cd' * 32}.json.tmp3"
        stale.write_bytes(b"{ half-written")
        (tmp_path / "store" / "index.json").write_text("{ torn")
        rebuilt = SolutionStore(tmp_path / "store")
        assert len(rebuilt) == 1
        assert fp in rebuilt


class TestDocumentCheck:
    def test_accepts_valid(self, solved):
        *_, doc, _ = solved
        assert check_solution_document(doc) is None

    @pytest.mark.parametrize(
        "mutate, expected",
        [
            (lambda d: d.update(format="x"), "format"),
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.pop("tiling"), "missing"),
            (lambda d: d["metrics"].update(total_cycles=-1), "total_cycles"),
        ],
    )
    def test_rejects_bad_shapes(self, solved, mutate, expected):
        *_, doc, _ = solved
        clone = json.loads(json.dumps(doc))
        mutate(clone)
        problem = check_solution_document(clone)
        assert problem is not None and expected in problem
