"""Shared fixtures for the compile-service tests.

The daemon fixtures run a real :class:`ReproService` with the unix
socket front end on a short temp path (``AF_UNIX`` paths are limited to
~108 bytes, so pytest's deep tmp_path is unsuitable for the socket).
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.atoms.generation import SAParams
from repro.config import ArchConfig
from repro.framework import OptimizerOptions
from repro.obs import reset_registry
from repro.service import ReproService, ServeClient, serve

#: Tiny but real search settings every service test shares.
FAST_SA = SAParams(max_iterations=8)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Isolate the global metrics registry per test."""
    reset_registry()
    yield
    reset_registry()


@pytest.fixture
def arch() -> ArchConfig:
    return ArchConfig(mesh_rows=4, mesh_cols=4)


@pytest.fixture
def fast_options() -> OptimizerOptions:
    return OptimizerOptions(sa_params=FAST_SA, restarts=2, seed=3)


@pytest.fixture
def short_dir():
    """A short-pathed scratch directory (unix-socket safe)."""
    with tempfile.TemporaryDirectory(prefix="repro-svc-") as tmp:
        yield Path(tmp)


class DaemonHarness:
    """One running daemon + client, restartable on the same state dir."""

    def __init__(self, state_dir: Path, **service_kwargs):
        self.state_dir = state_dir
        self.service_kwargs = service_kwargs
        self.socket_path = str(state_dir / "repro.sock")
        self.service: ReproService | None = None
        self.thread: threading.Thread | None = None
        self.client = ServeClient(self.socket_path, timeout_s=120.0)

    def start(self) -> "DaemonHarness":
        assert self.thread is None, "daemon already running"
        self.service = ReproService(self.state_dir, **self.service_kwargs)
        self.thread = threading.Thread(
            target=serve, args=(self.service, self.socket_path), daemon=True
        )
        self.thread.start()
        deadline = 200
        while deadline:
            try:
                self.client.ping()
                return self
            except OSError:
                deadline -= 1
                time.sleep(0.05)
        raise RuntimeError("daemon did not come up")

    def stop(self) -> None:
        if self.thread is None:
            return
        try:
            self.client.shutdown()
        except OSError:
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon did not stop"
        self.thread = None
        self.service = None


@pytest.fixture
def daemon(short_dir):
    """A running daemon on a fresh state dir; stopped at teardown."""
    harness = DaemonHarness(short_dir / "state").start()
    yield harness
    harness.stop()
