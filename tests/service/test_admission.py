"""Admission control: queue depth, quotas, release accounting."""

from __future__ import annotations

import pytest

from repro.service import AdmissionController, AdmissionError


class TestAdmission:
    def test_admits_within_quota(self):
        ctl = AdmissionController(max_queue_depth=4, default_quota=2)
        ctl.admit("a")
        ctl.admit("a")
        assert ctl.in_flight("a") == 2

    def test_quota_exceeded(self):
        ctl = AdmissionController(max_queue_depth=10, default_quota=1)
        ctl.admit("a")
        with pytest.raises(AdmissionError) as err:
            ctl.admit("a")
        assert err.value.code == "quota-exceeded"
        assert ctl.in_flight("a") == 1  # the rejected admit claims nothing

    def test_queue_full(self):
        ctl = AdmissionController(max_queue_depth=2, default_quota=5)
        ctl.admit("a")
        ctl.admit("b")
        with pytest.raises(AdmissionError) as err:
            ctl.admit("c")
        assert err.value.code == "queue-full"

    def test_per_tenant_override(self):
        ctl = AdmissionController(
            max_queue_depth=10, default_quota=1, quotas={"ci": 3}
        )
        for _ in range(3):
            ctl.admit("ci")
        with pytest.raises(AdmissionError):
            ctl.admit("ci")
        ctl.admit("other")  # default-quota tenant unaffected by the override
        with pytest.raises(AdmissionError):
            ctl.admit("other")  # ...until it hits the default quota of 1

    def test_release_frees_slot(self):
        ctl = AdmissionController(max_queue_depth=10, default_quota=1)
        ctl.admit("a")
        ctl.release("a")
        ctl.admit("a")  # does not raise
        assert ctl.in_flight() == 1

    def test_release_never_goes_negative(self):
        ctl = AdmissionController()
        ctl.release("ghost")
        assert ctl.in_flight("ghost") == 0
        assert ctl.in_flight() == 0

    def test_snapshot(self):
        ctl = AdmissionController(
            max_queue_depth=4, default_quota=2, quotas={"ci": 4}
        )
        ctl.admit("ci")
        ctl.admit("dev")
        snap = ctl.snapshot()
        assert snap["in_flight"] == {"ci": 1, "dev": 1}
        assert snap["total_in_flight"] == 2
        assert snap["quotas"] == {"ci": 4}

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(default_quota=0)
        with pytest.raises(ValueError):
            AdmissionController(quotas={"x": 0})
