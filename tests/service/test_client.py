"""ServeClient transport policy: retries, deadlines, socket-path limits."""

from __future__ import annotations

import socket
import threading
from pathlib import Path

import pytest

from repro.resilience.timing import Deadline, backoff_for
from repro.service import SUN_PATH_LIMIT, ServeClient, socket_path_problem
from repro.service.client import ServiceError


class TestBackoffLadder:
    def test_values_are_the_shared_ladder(self):
        assert backoff_for(0) == 0.0
        assert backoff_for(1, base_s=0.05) == 0.05
        assert backoff_for(2, base_s=0.05) == 0.1
        assert backoff_for(3, base_s=0.05) == 0.2

    def test_capped(self):
        assert backoff_for(50, base_s=0.05, cap_s=5.0) == 5.0

    def test_negative_attempt_waits_nothing(self):
        assert backoff_for(-3) == 0.0


class TestDeadline:
    def test_none_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired
        assert deadline.remaining_s() is None

    def test_zero_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        assert deadline.remaining_s() == 0.0

    def test_positive_timeout_counts_down(self):
        deadline = Deadline(60.0)
        assert not deadline.expired
        remaining = deadline.remaining_s()
        assert 0.0 < remaining <= 60.0

    def test_reset_restarts(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        deadline.reset(60.0)
        assert not deadline.expired

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestSocketPathLimit:
    def test_short_path_ok(self):
        assert socket_path_problem("/tmp/repro.sock") is None

    def test_long_path_reports_problem(self):
        long_path = "/tmp/" + "x" * SUN_PATH_LIMIT + "/repro.sock"
        problem = socket_path_problem(long_path)
        assert problem is not None and "sun_path" in problem

    def test_boundary(self):
        ok = "/" + "x" * (SUN_PATH_LIMIT - 2)
        too_long = "/" + "x" * (SUN_PATH_LIMIT - 1)
        assert socket_path_problem(ok) is None
        assert socket_path_problem(too_long) is not None

    def test_client_rejects_long_path_up_front(self):
        with pytest.raises(ValueError, match="sun_path"):
            ServeClient("/tmp/" + "x" * SUN_PATH_LIMIT)

    def test_pathlike_accepted(self):
        assert socket_path_problem(Path("/tmp/repro.sock")) is None


class _FlakyServer:
    """A raw unix-socket server that drops the first N responses."""

    def __init__(self, socket_path: str, drop_first: int):
        self.socket_path = socket_path
        self.drop_first = drop_first
        self.connections = 0
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(socket_path)
        self._server.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with conn:
                conn.makefile("r", encoding="utf-8").readline()
                self.connections += 1
                if self.connections > self.drop_first:
                    conn.sendall(b'{"ok": true, "protocol": 2}\n')
                # else: close without answering (the dropped response)

    def close(self) -> None:
        self._server.close()
        self._thread.join(timeout=5)


class TestTransportRetries:
    def test_call_retries_through_dropped_responses(self, short_dir):
        server = _FlakyServer(str(short_dir / "flaky.sock"), drop_first=2)
        try:
            client = ServeClient(
                server.socket_path, timeout_s=5.0, retries=2, backoff_s=0.001
            )
            assert client.ping()["protocol"] == 2
            assert server.connections == 3
        finally:
            server.close()

    def test_call_gives_up_after_retry_budget(self, short_dir):
        server = _FlakyServer(str(short_dir / "flaky.sock"), drop_first=99)
        try:
            client = ServeClient(
                server.socket_path, timeout_s=5.0, retries=1, backoff_s=0.001
            )
            with pytest.raises(ServiceError) as err:
                client.ping()
            assert err.value.code == "no-response"
            assert server.connections == 2  # first try + one retry
        finally:
            server.close()

    def test_unreachable_daemon_retries_then_raises(self, short_dir):
        client = ServeClient(
            str(short_dir / "nobody.sock"), retries=1, backoff_s=0.001
        )
        with pytest.raises(OSError):
            client.ping()

    def test_rejects_negative_retries(self, short_dir):
        with pytest.raises(ValueError):
            ServeClient(str(short_dir / "a.sock"), retries=-1)
