"""ReproService end-to-end: determinism, coalescing, restart, wire ops."""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace

import pytest

from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.obs import get_registry
from repro.serialize import canonical_solution_bytes, solution_to_dict
from repro.service import (
    AdmissionError,
    CompileRequest,
    ReproService,
    ServiceError,
)
from tests.service.conftest import FAST_SA, DaemonHarness


def _request(model="mobilenet_v2_bench", arch=None, tenant="default", **opt):
    from repro.config import ArchConfig

    base = dict(sa_params=FAST_SA, restarts=2, seed=3)
    base.update(opt)
    options = OptimizerOptions(**base)
    return CompileRequest(
        model=model,
        arch=arch or ArchConfig(mesh_rows=4, mesh_cols=4),
        options=options,
        tenant=tenant,
    )


def _direct_bytes(request: CompileRequest) -> bytes:
    """What `repro optimize` would produce for the same request."""
    outcome = AtomicDataflowOptimizer(
        request.graph, request.arch, replace(request.options, jobs=1)
    ).optimize()
    return canonical_solution_bytes(
        solution_to_dict(outcome, request.options.dataflow, include_search=False)
    )


def _drain(service: ReproService, job_id: str, timeout_s: float = 180.0):
    """Poll a (runnerless-client) service until the job is terminal."""
    deadline = time.monotonic() + timeout_s
    while True:
        job = service.status(job_id)
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} stuck in {job['state']}")
        time.sleep(0.05)


class TestServeDeterminism:
    def test_served_equals_direct_optimize_jobs1_and_jobs4(self, short_dir, arch):
        """The headline contract on two zoo models, serial and parallel."""
        for jobs in (1, 4):
            harness = DaemonHarness(short_dir / f"state-j{jobs}").start()
            try:
                for model in ("mobilenet_v2_bench", "vgg19_bench"):
                    request = _request(model=model, arch=arch, jobs=jobs)
                    submitted = harness.client.submit(request)
                    assert submitted["source"] == "search"
                    job = harness.client.wait(submitted["job_id"])
                    assert job["state"] == "done"
                    served = harness.client.result(submitted["job_id"])
                    assert served["solution_json"].encode() == _direct_bytes(
                        request
                    ), f"{model} jobs={jobs} diverged from direct optimize"
            finally:
                harness.stop()

    def test_cache_hit_is_byte_identical(self, daemon):
        request = _request()
        first = daemon.client.submit(request)
        daemon.client.wait(first["job_id"])
        second = daemon.client.submit(request)
        assert second["state"] == "done"
        assert second["source"] == "cache"
        assert (
            daemon.client.result(first["job_id"])["solution_json"]
            == daemon.client.result(second["job_id"])["solution_json"]
        )
        stats = daemon.client.stats()
        assert stats["counters"]["service.searches"] == 1

    def test_concurrent_identical_submissions_search_once(self, daemon):
        """N identical concurrent submissions: one search, N results equal."""
        request = _request(model="vgg19_bench")
        n = 4
        results: list[dict] = [None] * n
        errors: list[Exception] = []

        def submit(i: int) -> None:
            try:
                results[i] = daemon.client.submit(request)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        payloads = set()
        sources = []
        for submitted in results:
            job = daemon.client.wait(submitted["job_id"])
            assert job["state"] == "done"
            sources.append(job["source"])
            payloads.add(
                daemon.client.result(submitted["job_id"])["solution_json"]
            )
        assert len(payloads) == 1  # byte-identical across all four
        assert sources.count("search") == 1
        assert daemon.client.stats()["counters"]["service.searches"] == 1

    def test_warm_daemon_second_model_then_repeat(self, daemon):
        """A daemon that has already searched reuses warm sessions."""
        first = daemon.client.submit(_request())
        daemon.client.wait(first["job_id"])
        repeat = daemon.client.submit(_request(seed=4))  # same ctx, new search
        job = daemon.client.wait(repeat["job_id"])
        assert job["state"] == "done"
        stats = daemon.client.stats()
        assert stats["counters"]["session.hits"] >= 1  # ctx was reused


class TestRestartRecovery:
    def test_queued_job_survives_kill(self, short_dir, arch):
        """A daemon killed with a queued job finishes it after restart,
        byte-identically to an uninterrupted daemon."""
        request = _request(arch=arch)
        # Uninterrupted control run on its own state dir.
        control = ReproService(short_dir / "control")
        control.start()
        control_id = control.submit(request.to_dict())["job_id"]
        _drain(control, control_id)
        control_bytes = control.result(control_id)["solution_json"]
        control.stop()

        # "Kill" a daemon whose runner never got to the job: the journal
        # records it queued, then the process dies (journal abandoned).
        killed = ReproService(short_dir / "state")
        job_id = killed.submit(request.to_dict())["job_id"]
        killed.journal.close()  # abrupt: runner never started

        revived = ReproService(short_dir / "state")
        assert revived.status(job_id)["state"] == "queued"
        revived.start()
        job = _drain(revived, job_id)
        assert job["state"] == "done"
        assert revived.result(job_id)["solution_json"] == control_bytes
        revived.stop()

    def test_running_job_resumes_from_checkpoint(self, short_dir, arch):
        """A job killed mid-search resumes from its candidate checkpoint
        and produces the identical document."""
        request = _request(arch=arch)
        expected = _direct_bytes(request)

        killed = ReproService(short_dir / "state")
        job_id = killed.submit(request.to_dict())["job_id"]
        # Simulate the kill happening mid-search: the journal shows the
        # job running, and its candidate checkpoint already holds every
        # completed candidate (the strongest resume case).
        record = killed._jobs[job_id].advanced("running")
        killed.journal.record("running", record)
        ck_path = str(short_dir / "state" / "ck" / f"{job_id}.jsonl")
        AtomicDataflowOptimizer(
            request.graph,
            request.arch,
            replace(request.options, checkpoint=ck_path),
        ).optimize()
        killed.journal.close()

        revived = ReproService(short_dir / "state")
        revived.start()
        job = _drain(revived, job_id)
        assert job["state"] == "done"
        assert revived.result(job_id)["solution_json"].encode() == expected
        revived.stop()

    def test_coalesced_waiters_survive_restart_as_cache_hits(
        self, short_dir, arch
    ):
        request = _request(arch=arch)
        killed = ReproService(short_dir / "state")
        primary = killed.submit(request.to_dict())["job_id"]
        waiter = killed.submit(request.to_dict())["job_id"]
        assert killed.status(waiter)["source"] == "coalesced"
        killed.journal.close()

        revived = ReproService(short_dir / "state")
        revived.start()
        jobs = {_drain(revived, j)["state"] for j in (primary, waiter)}
        assert jobs == {"done"}
        assert (
            revived.result(primary)["solution_json"]
            == revived.result(waiter)["solution_json"]
        )
        revived.stop()


class TestAdmissionIntegration:
    def test_queue_full_backpressure(self, short_dir):
        service = ReproService(short_dir / "state", max_queue_depth=2)
        try:
            service.submit(_request(model="mobilenet_v2_bench").to_dict())
            service.submit(_request(model="vgg19_bench").to_dict())
            with pytest.raises(AdmissionError) as err:
                service.submit(_request(model="resnet50_bench").to_dict())
            assert err.value.code == "queue-full"
        finally:
            service.stop()

    def test_tenant_quota_backpressure(self, short_dir):
        service = ReproService(short_dir / "state", default_quota=1)
        try:
            service.submit(_request(tenant="a").to_dict())
            with pytest.raises(AdmissionError) as err:
                service.submit(
                    _request(model="vgg19_bench", tenant="a").to_dict()
                )
            assert err.value.code == "quota-exceeded"
            # Another tenant still gets in.
            service.submit(_request(model="vgg19_bench", tenant="b").to_dict())
        finally:
            service.stop()

    def test_cache_hits_bypass_admission(self, short_dir, arch):
        service = ReproService(short_dir / "state", max_queue_depth=1)
        try:
            request = _request(arch=arch)
            job_id = service.submit(request.to_dict())["job_id"]
            service.start()
            _drain(service, job_id)
            # Saturate the queue with a different workload...
            service.submit(_request(model="vgg19_bench", seed=99).to_dict())
            # ...the cached request still gets an instant answer.
            hit = service.submit(request.to_dict())
            assert hit["state"] == "done" and hit["source"] == "cache"
        finally:
            service.stop()

    def test_cancel_releases_slot_and_fails_waiters(self, short_dir):
        service = ReproService(short_dir / "state", default_quota=2)
        try:
            request = _request(tenant="a")
            primary = service.submit(request.to_dict())["job_id"]
            waiter = service.submit(request.to_dict())["job_id"]
            cancelled = service.cancel(primary)
            assert cancelled["state"] == "cancelled"
            assert service.status(waiter)["state"] == "failed"
            assert service.admission.in_flight("a") == 0
        finally:
            service.stop()


class _StubSession:
    """A session stand-in with a scriptable ``optimize``."""

    def __init__(self, script):
        self._script = script

    def optimize(self, options):
        return self._script()


class _StubSessions:
    """SessionManager stand-in: every acquire returns the same script."""

    def __init__(self, script):
        self._session = _StubSession(script)

    def acquire(self, graph, arch, options):
        return self._session

    def release(self, session):
        pass

    def close(self):
        pass

    def __len__(self):
        return 0


class TestRunnerPool:
    def test_multi_runner_results_equal_single_runner_and_direct(
        self, short_dir, arch
    ):
        """--runners 4 == --runners 1 == repro optimize, byte for byte."""
        requests = [
            _request(arch=arch, seed=seed) for seed in (3, 4)
        ] + [_request(model="vgg19_bench", arch=arch)]
        expected = [_direct_bytes(r) for r in requests]
        for runners in (1, 4):
            service = ReproService(
                short_dir / f"state-r{runners}", runners=runners
            )
            try:
                service.start()
                ids = [
                    service.submit(r.to_dict())["job_id"] for r in requests
                ]
                for job_id, want in zip(ids, expected):
                    assert _drain(service, job_id)["state"] == "done"
                    got = service.result(job_id)["solution_json"].encode()
                    assert got == want, f"runners={runners} diverged"
            finally:
                service.stop()

    def test_stalled_lease_is_reclaimed_and_late_result_discarded(
        self, short_dir
    ):
        """A wedged runner loses its lease; its eventual result is
        superseded, and the retry owns the job."""
        wedged = threading.Event()
        proceed = threading.Event()
        calls = []

        def script():
            calls.append(threading.current_thread().name)
            if len(calls) == 1:
                wedged.set()
                proceed.wait(30)
            raise RuntimeError("search blew up")

        service = ReproService(
            short_dir / "state",
            runners=1,
            max_job_attempts=2,
            retry_backoff_s=0.001,
            heartbeat_timeout_s=0.05,
            supervise_interval_s=0.02,
        )
        service.sessions = _StubSessions(script)
        try:
            job_id = service.submit(_request().to_dict())["job_id"]
            service.start()
            assert wedged.wait(30)
            # The supervisor reclaims the stalled lease and hands the
            # job to a fresh runner, whose attempt-2 failure is final.
            job = _drain(service, job_id)
            assert job["state"] == "failed"
            assert job["attempt"] == 2
            counters = get_registry().snapshot().counters
            assert counters["service.lease.stalled"] >= 1
            assert counters["service.lease.reclaimed"] >= 1
            # Free the wedged runner: its late failure must be discarded
            # (the job is already terminal), not double-counted.
            proceed.set()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                counters = get_registry().snapshot().counters
                if counters.get("service.lease.superseded", 0) >= 1:
                    break
                time.sleep(0.01)
            assert (
                get_registry().snapshot().counters["service.lease.superseded"]
                >= 1
            )
            assert service.status(job_id)["state"] == "failed"  # unchanged
        finally:
            proceed.set()
            service.stop()

    def test_failing_search_retries_to_cap_then_fails(self, short_dir):
        def script():
            raise RuntimeError("deterministically broken")

        service = ReproService(
            short_dir / "state",
            runners=2,
            max_job_attempts=3,
            retry_backoff_s=0.001,
            supervise_interval_s=0.02,
        )
        service.sessions = _StubSessions(script)
        try:
            job_id = service.submit(_request().to_dict())["job_id"]
            service.start()
            job = _drain(service, job_id)
            assert job["state"] == "failed"
            assert job["attempt"] == 3
            assert "attempt 3/3" in job["error"]
            counters = get_registry().snapshot().counters
            assert counters["service.lease.retries"] == 2
            assert counters["service.lease.issued"] == 3
        finally:
            service.stop()


class TestHealthAndDrain:
    def test_health_reports_runners_leases_and_metrics(self, daemon):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        health = daemon.client.health()
        assert health["draining"] is False
        assert health["runners_target"] == 1
        assert len(health["runners"]) == 1
        assert health["runners"][0]["alive"] is True
        assert health["leases"] == []  # nothing in flight any more
        assert health["lease_stats"]["issued"] >= 1
        assert health["lease_stats"]["reclaimed"] == 0
        # The metrics field is a full mergeable snapshot: a fleet
        # aggregator can fold health responses from many daemons.
        from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

        snapshot = MetricsSnapshot.from_dict(health["metrics"])
        fleet = MetricsRegistry()
        fleet.merge(snapshot)
        fleet.merge(snapshot)
        assert fleet.counter("service.searches").value == 2

    def test_drain_rejects_new_work_and_stops_daemon(self, short_dir, arch):
        harness = DaemonHarness(short_dir / "state").start()
        submitted = harness.client.submit(_request(arch=arch))
        harness.client.wait(submitted["job_id"])
        summary = harness.client.drain()
        assert summary["draining"] is True
        assert summary["requeued"] == []
        harness.thread.join(timeout=30)
        assert not harness.thread.is_alive(), "daemon did not exit after drain"
        harness.thread = None

    def test_drain_requeues_running_jobs_for_successor(self, short_dir):
        """A job that cannot finish inside the drain window is journaled
        back to queued — the successor daemon picks it up."""
        wedged = threading.Event()
        proceed = threading.Event()

        def script():
            wedged.set()
            proceed.wait(30)
            raise RuntimeError("too late: the lease is gone")

        service = ReproService(
            short_dir / "state", runners=1, supervise_interval_s=0.02
        )
        service.sessions = _StubSessions(script)
        job_id = service.submit(_request().to_dict())["job_id"]
        service.start()
        assert wedged.wait(30)
        summary = service.drain(timeout_s=0.1)
        assert summary["requeued"] == [job_id]
        assert service.status(job_id)["state"] == "queued"
        with pytest.raises(AdmissionError) as err:
            service.submit(_request(seed=99).to_dict())
        assert err.value.code == "draining"
        proceed.set()
        # The successor finishes the requeued job for real.
        revived = ReproService(short_dir / "state")
        try:
            revived.start()
            job = _drain(revived, job_id)
            assert job["state"] == "done"
            assert revived.result(job_id)["solution_json"].encode() == (
                _direct_bytes(_request())
            )
        finally:
            revived.stop()

    def test_drain_is_idempotent(self, short_dir):
        service = ReproService(short_dir / "state")
        service.start()
        first = service.drain(timeout_s=5.0)
        second = service.drain(timeout_s=5.0)
        assert first["draining"] and second["draining"]
        assert second["requeued"] == []


class TestWireProtocol:
    def test_unknown_op_and_bad_json(self, daemon):
        with pytest.raises(ServiceError) as err:
            daemon.client.call("frobnicate")
        assert err.value.code == "bad-request"

    def test_unknown_job(self, daemon):
        with pytest.raises(ServiceError) as err:
            daemon.client.status("job-999999")
        assert err.value.code == "not-found"

    def test_bad_request_rejected(self, daemon):
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"model": "no-such-model"})
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError) as err:
            daemon.client.submit({"model": "vgg19_bench", "wat": 1})
        assert err.value.code == "bad-request"

    def test_result_of_unfinished_job_is_clean_error(self, short_dir, daemon):
        submitted = daemon.client.submit(_request())
        # The job may or may not have finished yet; force the error path
        # with a job we know is queued on a runnerless service.
        service = ReproService(short_dir / "aux")
        try:
            queued = service.submit(_request(seed=123).to_dict())["job_id"]
            with pytest.raises(ValueError, match="queued"):
                service.result(queued)
        finally:
            service.stop()
        daemon.client.wait(submitted["job_id"])

    def test_jobs_and_stats_ops(self, daemon):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        jobs = daemon.client.jobs()
        assert any(j["job_id"] == submitted["job_id"] for j in jobs)
        stats = daemon.client.stats()
        assert stats["store"]["entries"] == 1
        assert stats["jobs_by_state"]["done"] >= 1
        assert json.dumps(stats)  # JSON-serializable end to end
