"""OptimizerOptions / CompileRequest serialization round trips."""

from __future__ import annotations

import json

import pytest

from repro.atoms.generation import SAParams
from repro.config import DEFAULT_ARCH, ArchConfig
from repro.framework import OptimizerOptions
from repro.resilience import FaultPlan, FaultSpec
from repro.service import CompileRequest


class TestOptionsRoundTrip:
    def test_defaults(self):
        options = OptimizerOptions()
        assert OptimizerOptions.from_dict(options.to_dict()) == options

    def test_everything_customized(self):
        options = OptimizerOptions(
            dataflow="yx",
            batch=2,
            atom_generation="even",
            scheduler="greedy",
            mapping="zigzag",
            sa_params=SAParams(max_iterations=33),
            lookahead=2,
            restarts=5,
            seed=11,
            jobs=3,
            dedup=False,
            validate=True,
            retries=2,
            candidate_timeout_s=9.5,
            checkpoint="/tmp/ck.jsonl",
            resume=True,
            faults=FaultPlan(
                specs=(FaultSpec(index=1, kind="raise"),
                       FaultSpec(index=2, kind="stall", stall_s=0.5))
            ),
        )
        rebuilt = OptimizerOptions.from_dict(options.to_dict())
        assert rebuilt == options

    def test_document_is_pure_json(self):
        options = OptimizerOptions(
            faults=FaultPlan(specs=(FaultSpec(index=0, kind="raise"),))
        )
        doc = options.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert OptimizerOptions.from_dict(json.loads(json.dumps(doc))) == options

    def test_rejects_unknown_top_level_key(self):
        doc = OptimizerOptions().to_dict()
        doc["bogus"] = 1
        with pytest.raises(ValueError, match="unknown option key.*bogus"):
            OptimizerOptions.from_dict(doc)

    def test_rejects_unknown_sa_key(self):
        doc = OptimizerOptions().to_dict()
        doc["sa_params"]["warp_speed"] = True
        with pytest.raises(ValueError, match="warp_speed"):
            OptimizerOptions.from_dict(doc)

    def test_rejects_unknown_fault_key(self):
        doc = OptimizerOptions(
            faults=FaultPlan(specs=(FaultSpec(index=0, kind="raise"),))
        ).to_dict()
        doc["faults"]["specs"][0]["zap"] = 1
        with pytest.raises(ValueError, match="zap"):
            OptimizerOptions.from_dict(doc)

    def test_rejects_invalid_values(self):
        doc = OptimizerOptions().to_dict()
        doc["restarts"] = 0
        with pytest.raises(ValueError):
            OptimizerOptions.from_dict(doc)


class TestCompileRequest:
    def test_round_trip(self):
        request = CompileRequest(
            model="vgg19_bench",
            arch=ArchConfig(mesh_rows=2, mesh_cols=2),
            options=OptimizerOptions(seed=9),
            tenant="ci",
        )
        rebuilt = CompileRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.fingerprint == request.fingerprint

    def test_defaults_fill_in(self):
        request = CompileRequest.from_dict({"model": "vgg19_bench"})
        assert request.arch == DEFAULT_ARCH
        assert request.options == OptimizerOptions()
        assert request.tenant == "default"

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown request key"):
            CompileRequest.from_dict({"model": "vgg19_bench", "extra": 1})

    def test_requires_model(self):
        with pytest.raises(ValueError, match="model"):
            CompileRequest.from_dict({})
        with pytest.raises(ValueError):
            CompileRequest(model="")

    def test_tenant_not_in_fingerprint(self):
        a = CompileRequest(model="vgg19_bench", tenant="a")
        b = CompileRequest(model="vgg19_bench", tenant="b")
        assert a.fingerprint == b.fingerprint

    def test_execution_knobs_not_in_fingerprint(self):
        a = CompileRequest(model="vgg19_bench", options=OptimizerOptions(jobs=1))
        b = CompileRequest(model="vgg19_bench", options=OptimizerOptions(jobs=4))
        assert a.fingerprint == b.fingerprint

    def test_unknown_model_fails_at_fingerprint(self):
        request = CompileRequest(model="not-a-model")
        with pytest.raises(KeyError):
            request.fingerprint
