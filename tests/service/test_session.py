"""Warm sessions and context caching: reuse without decision drift."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ArchConfig
from repro.framework import AtomicDataflowOptimizer
from repro.models import get_model
from repro.obs import get_registry
from repro.pipeline import ContextCache
from repro.service import CompileSession, SessionManager


def _decisions(outcome):
    return [
        (t.label, t.accepted, t.reason, t.total_cycles) for t in outcome.traces
    ]


class TestContextCache:
    def test_hit_returns_same_object(self, arch):
        cache = ContextCache(capacity=2)
        graph = get_model("mobilenet_v2_bench")
        assert cache.get(graph, arch) is cache.get(graph, arch)
        counters = get_registry()
        assert counters.counter("context_cache.hits").value == 1
        assert counters.counter("context_cache.misses").value == 1

    def test_lru_eviction(self, arch):
        cache = ContextCache(capacity=2)
        g1 = get_model("mobilenet_v2_bench")
        g2 = get_model("vgg19_bench")
        c1 = cache.get(g1, arch)
        cache.get(g2, arch)
        cache.get(g1, arch)  # refresh g1
        cache.get(g1, arch, batch=2)  # evicts g2 (LRU)
        assert cache.get(g1, arch) is c1
        assert len(cache) == 2 + 1 - 1  # capacity respected

    def test_invalidate_arch(self, arch):
        cache = ContextCache(capacity=4)
        graph = get_model("mobilenet_v2_bench")
        other = ArchConfig(mesh_rows=2, mesh_cols=2)
        stale = cache.get(graph, arch)
        cache.get(graph, other)
        dropped = cache.invalidate_arch(ContextCache.key_for(graph, arch)[1])
        assert dropped == 1
        assert cache.get(graph, other) is not None
        assert cache.get(graph, arch) is not stale  # rebuilt

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ContextCache(capacity=0)


class TestCompileSession:
    def test_warm_search_matches_cold_process(self, arch, fast_options):
        """Second search on a warm session ≡ a cold optimizer run."""
        graph = get_model("mobilenet_v2_bench")
        manager = SessionManager(capacity=2)
        try:
            session = manager.get(graph, arch, fast_options)
            first = session.optimize(fast_options)
            second = session.optimize(fast_options)  # warm ctx + pool
            cold = AtomicDataflowOptimizer(graph, arch, fast_options).optimize()
            assert _decisions(first) == _decisions(second) == _decisions(cold)
            assert (
                first.result.total_cycles
                == second.result.total_cycles
                == cold.result.total_cycles
            )
            assert session.searches_run == 2
        finally:
            manager.close()

    def test_warm_parallel_matches_inline(self, arch, fast_options):
        """jobs=2 on a reused pool decides like jobs=1 inline."""
        graph = get_model("mobilenet_v2_bench")
        manager = SessionManager(capacity=2)
        try:
            session = manager.get(graph, arch, fast_options)
            inline = session.optimize(fast_options)
            parallel = session.optimize(replace(fast_options, jobs=2))
            again = session.optimize(replace(fast_options, jobs=2))
            assert _decisions(inline) == _decisions(parallel) == _decisions(again)
        finally:
            manager.close()

    def test_mismatched_options_rejected(self, arch, fast_options):
        graph = get_model("mobilenet_v2_bench")
        manager = SessionManager(capacity=2)
        try:
            session = manager.get(graph, arch, fast_options)
            with pytest.raises(ValueError, match="warm for"):
                session.optimize(replace(fast_options, batch=2))
        finally:
            manager.close()

    def test_closed_session_rejects_work(self, arch, fast_options):
        graph = get_model("mobilenet_v2_bench")
        session = CompileSession(
            graph, arch, SessionManager(capacity=1).contexts.get(graph, arch)
        )
        session.close()
        with pytest.raises(RuntimeError):
            session.optimize(fast_options)


class TestSessionManager:
    def test_session_reuse(self, arch, fast_options):
        graph = get_model("mobilenet_v2_bench")
        manager = SessionManager(capacity=2)
        try:
            assert manager.get(graph, arch, fast_options) is manager.get(
                graph, arch, fast_options
            )
            assert len(manager) == 1
        finally:
            manager.close()

    def test_lru_eviction_closes_session(self, arch, fast_options):
        manager = SessionManager(capacity=1)
        try:
            g1 = get_model("mobilenet_v2_bench")
            g2 = get_model("vgg19_bench")
            s1 = manager.get(g1, arch, fast_options)
            manager.get(g2, arch, fast_options)  # evicts s1
            assert len(manager) == 1
            with pytest.raises(RuntimeError):
                s1.optimize(fast_options)
        finally:
            manager.close()

    def test_invalidate_arch_closes_sessions(self, arch, fast_options):
        manager = SessionManager(capacity=4)
        try:
            graph = get_model("mobilenet_v2_bench")
            session = manager.get(graph, arch, fast_options)
            closed = manager.invalidate_arch(
                ContextCache.key_for(graph, arch)[1]
            )
            assert closed == 1
            assert len(manager) == 0
            with pytest.raises(RuntimeError):
                session.optimize(fast_options)
        finally:
            manager.close()
