"""JobRecord and the durable job journal."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import (
    JOB_FORMAT,
    JobJournal,
    JobJournalError,
    JobRecord,
    next_job_id,
)


def _record(job_id="job-000001", state="queued", **kw) -> JobRecord:
    defaults = dict(
        job_id=job_id,
        fingerprint="ab" * 32,
        model="vgg19_bench",
        tenant="ci",
        state=state,
    )
    defaults.update(kw)
    return JobRecord(**defaults)


class TestJobRecord:
    def test_round_trip(self):
        record = _record(state="done", source="cache", total_cycles=123)
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_rejects_unknown_keys(self):
        doc = _record().to_dict()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            JobRecord.from_dict(doc)

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            JobRecord.from_dict({"job_id": "job-000001"})

    def test_rejects_bad_state_and_source(self):
        with pytest.raises(ValueError):
            _record(state="paused")
        with pytest.raises(ValueError):
            _record(source="wishful")

    def test_terminal(self):
        assert not _record(state="queued").terminal
        assert not _record(state="running").terminal
        assert _record(state="done").terminal
        assert _record(state="failed").terminal
        assert _record(state="cancelled").terminal

    def test_advanced(self):
        done = _record(state="running").advanced("done", total_cycles=9)
        assert done.state == "done" and done.total_cycles == 9


class TestNextJobId:
    def test_empty(self):
        assert next_job_id({}) == "job-000001"
        assert next_job_id(None) == "job-000001"

    def test_continues_after_highest(self):
        jobs = {"job-000002": None, "job-000007": None}
        assert next_job_id(jobs) == "job-000008"

    def test_ignores_malformed_ids(self):
        assert next_job_id({"weird": None, "job-abc": None}) == "job-000001"


class TestJobJournal:
    def test_fresh_open_writes_header(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        assert journal.open() == {}
        journal.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == JOB_FORMAT

    def test_replay_keeps_latest_record(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        job = _record()
        journal.record("queued", job)
        job = job.advanced("running")
        journal.record("running", job)
        job = job.advanced("done", total_cycles=42)
        journal.record("done", job)
        journal.close()

        replayed = JobJournal(path).open()
        assert replayed == {"job-000001": job}

    def test_event_state_mismatch_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.open()
        with pytest.raises(ValueError, match="disagrees"):
            journal.record("done", _record(state="queued"))

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        journal.record("queued", _record())
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "running", "job": {"job_')  # the torn write
        replayed = JobJournal(path).open()
        assert replayed["job-000001"].state == "queued"

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        journal.record("queued", _record())
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "garbage")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JobJournalError):
            JobJournal(path).open()

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(JobJournalError, match="not a"):
            JobJournal(path).open()

    def test_append_requires_open(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        with pytest.raises(RuntimeError):
            journal.record("queued", _record())
