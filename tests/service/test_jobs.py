"""JobRecord and the durable job journal."""

from __future__ import annotations

import json

import pytest

import threading

from repro.resilience.faults import InjectedRunnerDeath, ServiceFaultPlan
from repro.service.jobs import (
    JOB_FORMAT,
    JobIdAllocator,
    JobJournal,
    JobJournalError,
    JobRecord,
    next_job_id,
)


def _record(job_id="job-000001", state="queued", **kw) -> JobRecord:
    defaults = dict(
        job_id=job_id,
        fingerprint="ab" * 32,
        model="vgg19_bench",
        tenant="ci",
        state=state,
    )
    defaults.update(kw)
    return JobRecord(**defaults)


class TestJobRecord:
    def test_round_trip(self):
        record = _record(state="done", source="cache", total_cycles=123)
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_rejects_unknown_keys(self):
        doc = _record().to_dict()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            JobRecord.from_dict(doc)

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            JobRecord.from_dict({"job_id": "job-000001"})

    def test_rejects_bad_state_and_source(self):
        with pytest.raises(ValueError):
            _record(state="paused")
        with pytest.raises(ValueError):
            _record(source="wishful")

    def test_terminal(self):
        assert not _record(state="queued").terminal
        assert not _record(state="running").terminal
        assert _record(state="done").terminal
        assert _record(state="failed").terminal
        assert _record(state="cancelled").terminal

    def test_advanced(self):
        done = _record(state="running").advanced("done", total_cycles=9)
        assert done.state == "done" and done.total_cycles == 9


class TestNextJobId:
    def test_empty(self):
        assert next_job_id({}) == "job-000001"
        assert next_job_id(None) == "job-000001"

    def test_continues_after_highest(self):
        jobs = {"job-000002": None, "job-000007": None}
        assert next_job_id(jobs) == "job-000008"

    def test_ignores_malformed_ids(self):
        assert next_job_id({"weird": None, "job-abc": None}) == "job-000001"


class TestJobIdAllocator:
    def test_continues_after_highest(self):
        allocator = JobIdAllocator({"job-000002": None, "job-000007": None})
        assert allocator.next() == "job-000008"
        assert allocator.next() == "job-000009"

    def test_ignores_malformed_ids(self):
        allocator = JobIdAllocator({"weird": None, "job-abc": None})
        assert allocator.next() == "job-000001"

    def test_concurrent_draws_never_collide(self):
        """The regression `next_job_id` had: N unsynchronized submitters
        must each get a distinct id."""
        allocator = JobIdAllocator({})
        drawn: list[str] = []
        lock = threading.Lock()

        def draw() -> None:
            ids = [allocator.next() for _ in range(50)]
            with lock:
                drawn.extend(ids)

        threads = [threading.Thread(target=draw) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(drawn) == 8 * 50
        assert len(set(drawn)) == len(drawn)


class TestLeaseFields:
    def test_round_trip(self):
        record = _record(
            state="running", runner_id="runner-3", lease_seq=17, attempt=2
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_defaults_are_unleased(self):
        record = _record()
        assert record.lease_seq == 0
        assert record.attempt == 0
        assert record.runner_id is None

    def test_rejects_negative_lease_fields(self):
        with pytest.raises(ValueError):
            _record(lease_seq=-1)
        with pytest.raises(ValueError):
            _record(attempt=-1)

    def test_journal_replays_lease_fields(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        job = _record()
        journal.record("queued", job)
        job = job.advanced(
            "running", runner_id="runner-1", lease_seq=1, attempt=1
        )
        journal.record("running", job)
        journal.close()
        replayed = JobJournal(path).open()["job-000001"]
        assert replayed.runner_id == "runner-1"
        assert replayed.lease_seq == 1
        assert replayed.attempt == 1


class TestJobJournal:
    def test_header_extras_journaled(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open(header_extras={"max_attempts": 5})
        journal.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["max_attempts"] == 5
        # Reopen surfaces the persisted header.
        reopened = JobJournal(path)
        reopened.open()
        assert reopened.header["max_attempts"] == 5
        reopened.close()

    def test_version1_journal_still_loads(self, tmp_path):
        """Pre-lease journals (version 1, no lease fields) stay readable."""
        path = tmp_path / "jobs.jsonl"
        job = _record().to_dict()
        for key in ("lease_seq", "attempt", "runner_id"):
            del job[key]
        path.write_text(
            json.dumps({"format": JOB_FORMAT, "version": 1}) + "\n"
            + json.dumps({"event": "queued", "job": job}) + "\n"
        )
        replayed = JobJournal(path).open()
        record = replayed["job-000001"]
        assert record.state == "queued"
        assert record.lease_seq == 0 and record.attempt == 0

    def test_torn_journal_fault_poisons_and_recovers(self, tmp_path):
        """The injected torn append kills the journal mid-line; a reopen
        recovers everything up to the tear."""
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(
            path, faults=ServiceFaultPlan.single("torn-journal", index=1)
        )
        journal.open()
        job = _record()
        journal.record("queued", job)  # arrival 0: intact
        with pytest.raises(InjectedRunnerDeath):
            journal.record(
                "running",
                job.advanced(
                    "running", runner_id="runner-1", lease_seq=1, attempt=1
                ),
            )  # arrival 1: torn mid-line
        assert journal.closed
        with pytest.raises(RuntimeError):
            journal.record("queued", job)
        assert not path.read_text().endswith("\n")  # the tear is real
        replayed = JobJournal(path).open()
        assert replayed["job-000001"].state == "queued"
    def test_fresh_open_writes_header(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        assert journal.open() == {}
        journal.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == JOB_FORMAT

    def test_replay_keeps_latest_record(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        job = _record()
        journal.record("queued", job)
        job = job.advanced("running")
        journal.record("running", job)
        job = job.advanced("done", total_cycles=42)
        journal.record("done", job)
        journal.close()

        replayed = JobJournal(path).open()
        assert replayed == {"job-000001": job}

    def test_event_state_mismatch_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.open()
        with pytest.raises(ValueError, match="disagrees"):
            journal.record("done", _record(state="queued"))

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        journal.record("queued", _record())
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "running", "job": {"job_')  # the torn write
        replayed = JobJournal(path).open()
        assert replayed["job-000001"].state == "queued"

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        journal.record("queued", _record())
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "garbage")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JobJournalError):
            JobJournal(path).open()

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(JobJournalError, match="not a"):
            JobJournal(path).open()

    def test_append_requires_open(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        with pytest.raises(RuntimeError):
            journal.record("queued", _record())
