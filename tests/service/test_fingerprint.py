"""Request fingerprints: canonical, deterministic, execution-blind."""

from __future__ import annotations

import json

import pytest

from repro.config import DEFAULT_ARCH, ArchConfig
from repro.fingerprint import (
    EXECUTION_KEYS,
    arch_from_dict,
    arch_to_dict,
    canonical_json,
    graph_fingerprint,
    graph_to_dict,
    request_fingerprint,
    request_to_dict,
)
from repro.framework import OptimizerOptions
from repro.models import get_model


@pytest.fixture(scope="module")
def graph():
    return get_model("mobilenet_v2_bench")


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_key_order_invariant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )


class TestGraphFingerprint:
    def test_stable_across_rebuilds(self, graph):
        assert graph_fingerprint(graph) == graph_fingerprint(
            get_model("mobilenet_v2_bench")
        )

    def test_differs_across_models(self, graph):
        assert graph_fingerprint(graph) != graph_fingerprint(
            get_model("vgg19_bench")
        )

    def test_document_is_json(self, graph):
        doc = graph_to_dict(graph)
        assert json.loads(canonical_json(doc)) == doc
        assert all("kind" in n["op"] for n in doc["nodes"])


class TestArchRoundTrip:
    def test_round_trip(self):
        arch = ArchConfig(mesh_rows=2, mesh_cols=3)
        assert arch_from_dict(arch_to_dict(arch)) == arch

    def test_rejects_unknown_keys(self):
        doc = arch_to_dict(DEFAULT_ARCH)
        doc["nope"] = 1
        with pytest.raises(ValueError, match="unknown arch key"):
            arch_from_dict(doc)

    def test_rejects_unknown_nested_keys(self):
        doc = arch_to_dict(DEFAULT_ARCH)
        doc["engine"]["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            arch_from_dict(doc)


class TestRequestFingerprint:
    def test_deterministic(self, graph):
        options = OptimizerOptions(restarts=3, seed=5)
        assert request_fingerprint(
            graph, DEFAULT_ARCH, options
        ) == request_fingerprint(graph, DEFAULT_ARCH, options)

    def test_execution_knobs_excluded(self, graph):
        base = OptimizerOptions(restarts=3, seed=5)
        fp = request_fingerprint(graph, DEFAULT_ARCH, base)
        for variant in (
            OptimizerOptions(restarts=3, seed=5, jobs=4),
            OptimizerOptions(restarts=3, seed=5, retries=7),
            OptimizerOptions(restarts=3, seed=5, validate=True),
            OptimizerOptions(
                restarts=3, seed=5, checkpoint="/tmp/x.jsonl", resume=True
            ),
        ):
            assert request_fingerprint(graph, DEFAULT_ARCH, variant) == fp

    def test_decision_knobs_included(self, graph):
        base = OptimizerOptions(restarts=3, seed=5)
        fp = request_fingerprint(graph, DEFAULT_ARCH, base)
        for variant in (
            OptimizerOptions(restarts=4, seed=5),
            OptimizerOptions(restarts=3, seed=6),
            OptimizerOptions(restarts=3, seed=5, scheduler="greedy"),
        ):
            assert request_fingerprint(graph, DEFAULT_ARCH, variant) != fp

    def test_arch_included(self, graph):
        options = OptimizerOptions()
        assert request_fingerprint(
            graph, DEFAULT_ARCH, options
        ) != request_fingerprint(
            graph, ArchConfig(mesh_rows=4, mesh_cols=4), options
        )

    def test_document_omits_execution_keys(self, graph):
        doc = request_to_dict(graph, DEFAULT_ARCH, OptimizerOptions(jobs=8))
        assert not (set(doc["options"]) & EXECUTION_KEYS)
        assert doc["fingerprint_version"] == 2

    def test_full_sha256(self, graph):
        fp = request_fingerprint(graph, DEFAULT_ARCH, OptimizerOptions())
        assert len(fp) == 64
        assert all(c in "0123456789abcdef" for c in fp)
