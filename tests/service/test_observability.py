"""Tests for the service observability plane.

End-to-end request tracing (trace ids on the wire, stitched per-job
span trees, persisted trace documents), the service event log and its
AD807 agreement with the job journal, the SLO latency histograms, and
the read-only HTTP exporter (``/metrics`` / ``/healthz`` / ``/jobs``).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.analysis.diagnostics import Report
from repro.analysis.service_rules import (
    check_event_log,
    check_service_state,
    check_trace_file,
)
from repro.obs import disable_tracing, enable_tracing, get_registry
from repro.obs.prom import parse_prometheus
from repro.obs.tracer import SpanRecord
from repro.service import MetricsHTTPServer, read_events
from repro.service.daemon import LATENCY_PREFIX
from repro.service.jobs import JOB_FORMAT, JobJournal, JobRecord
from repro.service.metrics_http import PROM_CONTENT_TYPE

from .conftest import DaemonHarness
from .test_daemon import _request


@pytest.fixture
def traced():
    """Tracing on for the test (the `repro serve` production mode)."""
    enable_tracing()
    yield
    disable_tracing()


def _http_get(port: int, path: str) -> tuple[int, str, str]:
    """GET from the exporter: (status, content-type, body)."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return (
                resp.status,
                resp.headers.get("Content-Type", ""),
                resp.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type", ""), (
            exc.read().decode("utf-8")
        )


class TestRequestTracing:
    def test_trace_id_echoed_on_every_wire_response(self, daemon, traced):
        submitted = daemon.client.submit(_request())
        assert submitted["trace_id"].startswith("tr-")
        daemon.client.wait(submitted["job_id"])
        status = daemon.client.status(submitted["job_id"])
        assert status["trace_id"] == submitted["trace_id"]
        result = daemon.client.result(submitted["job_id"])
        assert result["trace_id"] == submitted["trace_id"]

    def test_trace_id_is_deterministic_but_distinct_per_job(
        self, daemon, traced
    ):
        first = daemon.client.submit(_request())
        daemon.client.wait(first["job_id"])
        # The identical request is a cache hit: new job, new trace.
        second = daemon.client.submit(_request())
        assert second["source"] == "cache"
        assert second["trace_id"] != first["trace_id"]
        other = daemon.client.submit(_request(seed=11))
        assert other["trace_id"] != first["trace_id"]

    def test_stitched_trace_covers_queue_wait_lease_and_search(
        self, daemon, traced
    ):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        doc = daemon.client.trace(submitted["job_id"])
        assert doc["trace_id"] == submitted["trace_id"]
        spans = [SpanRecord.from_dict(s) for s in doc["spans"]]
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        root = by_name["service.job"]
        assert len(root) == 1, "exactly one root span"
        root = root[0]
        assert root.parent_id == 0
        assert dict(root.args)["trace"] == submitted["trace_id"]
        # queue wait and lease stitch directly under the root ...
        assert by_name["service.queue_wait"][0].parent_id == root.span_id
        lease = by_name["service.lease"][0]
        assert lease.parent_id == root.span_id
        # ... and the runner's search spans stitch under the lease:
        # every span is a descendant of the root through the lease.
        children: dict[int, list[SpanRecord]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        under_lease = set()
        frontier = [lease.span_id]
        while frontier:
            node = frontier.pop()
            for child in children.get(node, ()):
                under_lease.add(child.name)
                frontier.append(child.span_id)
        assert any(
            name.startswith(("search.", "sa.")) for name in under_lease
        ), f"search spans must stitch under the lease, got {under_lease}"
        assert len(spans) == sum(len(v) for v in children.values())

    def test_persisted_trace_is_ad808_clean_and_survives_restart(
        self, short_dir, arch, traced
    ):
        harness = DaemonHarness(short_dir / "state").start()
        try:
            submitted = harness.client.submit(_request(arch=arch))
            harness.client.wait(submitted["job_id"])
            job_id = submitted["job_id"]
        finally:
            harness.stop()
        trace_path = short_dir / "state" / "traces" / f"{job_id}.json"
        assert trace_path.exists()
        report = check_trace_file(trace_path)
        assert report.ok, report.render()
        # A restarted daemon serves the persisted document.
        harness = DaemonHarness(short_dir / "state").start()
        try:
            doc = harness.client.trace(job_id)
            assert doc["job_id"] == job_id
            assert doc["spans"]
        finally:
            harness.stop()

    def test_untraced_daemon_serves_empty_trace(self, daemon):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        doc = daemon.client.trace(submitted["job_id"])
        assert doc["spans"] == []


class TestEventLog:
    def test_event_log_agrees_with_journal(self, short_dir, arch, traced):
        harness = DaemonHarness(short_dir / "state").start()
        try:
            submitted = harness.client.submit(_request(arch=arch))
            harness.client.wait(submitted["job_id"])
            # A cache hit goes submit -> complete with no lease.
            harness.client.submit(_request(arch=arch))
        finally:
            harness.stop()
        state = short_dir / "state"
        report = check_event_log(
            state / "events.jsonl", state / "jobs.jsonl", Report()
        )
        assert report.ok, report.render()
        _, events = read_events(state / "events.jsonl")
        kinds = [e["kind"] for e in events]
        assert kinds.count("submit") == 2
        assert kinds.count("lease") == 1
        assert kinds.count("complete") == 2
        assert all(e["trace_id"].startswith("tr-") for e in events)

    def test_state_dir_check_covers_events_and_traces(
        self, short_dir, arch, traced
    ):
        harness = DaemonHarness(short_dir / "state").start()
        try:
            submitted = harness.client.submit(_request(arch=arch))
            harness.client.wait(submitted["job_id"])
        finally:
            harness.stop()
        report = check_service_state(short_dir / "state")
        assert report.ok, report.render()
        checked = " ".join(report.checked)
        assert "EventLog" in checked
        assert "JobTrace" in checked


class TestJournalBackCompat:
    def test_v2_journal_loads_with_none_trace_ids(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        record = {
            "job_id": "job-000001",
            "fingerprint": "f" * 16,
            "model": "m",
            "tenant": "t",
            "state": "queued",
            "source": "search",
            "attempt": 0,
            "lease_seq": 0,
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"format": JOB_FORMAT, "version": 2}) + "\n")
            fh.write(json.dumps({"event": "queued", "job": record}) + "\n")
        journal = JobJournal(path)
        jobs = journal.open()
        journal.close()
        assert jobs["job-000001"].trace_id is None

    def test_v3_round_trips_trace_id(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.open()
        journal.record(
            "queued",
            JobRecord(
                job_id="job-000001",
                fingerprint="f" * 16,
                model="m",
                tenant="t",
                trace_id="tr-0123456789abcdef",
            ),
        )
        journal.close()
        reloaded = JobJournal(path)
        jobs = reloaded.open()
        reloaded.close()
        assert jobs["job-000001"].trace_id == "tr-0123456789abcdef"


class TestLatencyHistograms:
    def test_slo_histograms_and_quantiles_after_jobs(self, daemon, traced):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        hit = daemon.client.submit(_request())
        assert hit["source"] == "cache"

        snapshot = get_registry().snapshot()
        hists = snapshot.histograms
        for short in ("queue_wait", "lease_hold", "compile_wall", "e2e"):
            name = f"{LATENCY_PREFIX}{short}"
            assert hists[name]["count"] >= 1, name
        assert hists[f"{LATENCY_PREFIX}cache_hit"]["count"] == 1
        assert hists[f"{LATENCY_PREFIX}e2e"]["count"] == 2

        health = daemon.client.health()
        quantiles = health["latency"]
        assert quantiles["e2e"]["count"] == 2
        for key in ("mean", "max", "p50", "p95", "p99"):
            assert key in quantiles["e2e"]
        stats = daemon.client.stats()
        assert stats["latency"]["e2e"]["count"] == 2

    def test_per_tenant_counters(self, daemon):
        submitted = daemon.client.submit(_request(tenant="acme"))
        daemon.client.wait(submitted["job_id"])
        counters = get_registry().snapshot().counters
        assert counters["service.tenant.acme.submitted"] == 1
        assert counters["service.tenant.acme.completed"] == 1


class TestMetricsHTTPServer:
    @pytest.fixture
    def exporter(self, daemon):
        server = MetricsHTTPServer(daemon.service, port=0)
        server.start()
        yield server
        server.stop()

    def test_metrics_endpoint_serves_valid_exposition(
        self, daemon, exporter
    ):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        status, content_type, body = _http_get(exporter.port, "/metrics")
        assert status == 200
        assert content_type == PROM_CONTENT_TYPE
        parsed = parse_prometheus(body)
        assert parsed.counters["service.searches"] == 1
        assert parsed.histograms[f"{LATENCY_PREFIX}e2e"]["count"] == 1

    def test_healthz_and_jobs_endpoints(self, daemon, exporter):
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        status, content_type, body = _http_get(exporter.port, "/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        health = json.loads(body)
        assert health["runners"][0]["alive"] is True
        assert "latency" in health
        status, _, body = _http_get(exporter.port, "/jobs")
        assert status == 200
        summary = json.loads(body)
        assert summary["jobs_by_state"] == {"done": 1}
        assert summary["queue_depth"] == 0
        assert summary["leases"] == []

    def test_unknown_path_404_and_writes_405(self, exporter):
        status, _, _ = _http_get(exporter.port, "/nope")
        assert status == 404
        request = urllib.request.Request(
            f"http://127.0.0.1:{exporter.port}/metrics",
            data=b"x",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 405

    def test_scrape_during_load_is_coherent(self, daemon, exporter):
        import threading

        pages: list[str] = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                status, _, body = _http_get(exporter.port, "/metrics")
                assert status == 200
                pages.append(body)

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for t in threads:
            t.start()
        submitted = daemon.client.submit(_request())
        daemon.client.wait(submitted["job_id"])
        stop.set()
        for t in threads:
            t.join()
        for body in pages:
            if not body:
                continue
            for name, state in parse_prometheus(body).histograms.items():
                assert sum(state["counts"]) == state["count"], name

    def test_serve_wires_the_exporter(self, short_dir):
        import socket as socket_mod
        import threading
        import time

        from repro.service import ReproService, ServeClient, serve

        state = short_dir / "state"
        socket_path = str(state / "repro.sock")
        # Reserve a free TCP port for serve() to bind the exporter on.
        with socket_mod.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        def run():
            serve(ReproService(state), socket_path, metrics_port=port)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        client = ServeClient(socket_path, timeout_s=60.0)
        try:
            for _ in range(200):
                try:
                    client.ping()
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                raise RuntimeError("daemon did not come up")
            status, content_type, _ = _http_get(port, "/metrics")
            assert status == 200
            assert content_type == PROM_CONTENT_TYPE
            status, _, _ = _http_get(port, "/healthz")
            assert status == 200
        finally:
            client.shutdown()
            thread.join(timeout=30)
        assert not thread.is_alive()
        # serve() tears the exporter down with the daemon.
        with pytest.raises(OSError):
            with socket_mod.create_connection(("127.0.0.1", port), timeout=2):
                pass
