"""Service-level chaos matrix: every fault kind, byte-identical results.

Each scenario arms one :class:`ServiceFaultPlan`, drives the service (or
the full unix-socket daemon for wire faults) through the fault, and
asserts the two halves of the determinism contract: no job is lost or
completed twice, and every completed result is byte-identical to the
fault-free ``repro optimize`` answer.  After each scenario the full
state dir must satisfy the AD802/AD804-808 validators — job journal,
event log, and persisted traces alike.

Every scenario runs *traced* (the ``repro serve`` production mode), so
the whole fault matrix doubles as proof that tracing never perturbs
recovery or results.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.service_rules import check_service_state
from repro.obs import disable_tracing, enable_tracing, get_registry
from repro.obs.prom import parse_prometheus
from repro.resilience.faults import ServiceFaultPlan, ServiceFaultSpec
from repro.service import (
    AdmissionError,
    MetricsHTTPServer,
    ReproService,
    read_events,
)
from tests.service.conftest import DaemonHarness
from tests.service.test_daemon import _direct_bytes, _drain, _request

#: Tight supervision so reclaim paths run in test time, not ops time.
FAST_SUPERVISION = dict(
    retry_backoff_s=0.001,
    supervise_interval_s=0.02,
)


@pytest.fixture(autouse=True)
def _traced_chaos():
    """Chaos runs traced: fault recovery must not depend on tracing off."""
    enable_tracing()
    yield
    disable_tracing()


def _assert_journal_clean(state_dir) -> None:
    report = check_service_state(state_dir)
    assert report.ok, f"journal validators failed:\n{report.render()}"


def _wait_until(predicate, timeout_s: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"{what} did not happen within {timeout_s}s")
        time.sleep(0.01)


class TestKillRunner:
    def test_transient_kill_retries_byte_identically(self, short_dir, arch):
        request = _request(arch=arch)
        expected = _direct_bytes(request)
        plan = ServiceFaultPlan.single("kill-runner")  # attempt 1 dies
        service = ReproService(
            short_dir / "state", faults=plan, **FAST_SUPERVISION
        )
        # Scrape /metrics continuously through the kill-and-reclaim: the
        # exporter must stay coherent under a daemon in active recovery.
        exporter = MetricsHTTPServer(service, port=0)
        exporter.start()
        scrape_stop = threading.Event()
        scrape_problems: list[str] = []

        def scrape_loop():
            import urllib.request

            url = f"http://127.0.0.1:{exporter.port}/metrics"
            while not scrape_stop.is_set():
                with urllib.request.urlopen(url, timeout=10) as resp:
                    body = resp.read().decode("utf-8")
                for name, state in parse_prometheus(body).histograms.items():
                    if sum(state["counts"]) != state["count"]:
                        scrape_problems.append(f"torn scrape of {name}")

        scraper = threading.Thread(target=scrape_loop)
        scraper.start()
        try:
            job_id = service.submit(request.to_dict())["job_id"]
            service.start()
            job = _drain(service, job_id)
            assert job["state"] == "done"
            assert job["attempt"] == 2  # first lease died, second finished
            assert service.result(job_id)["solution_json"].encode() == expected
            assert plan.fired_count("kill-runner") == 1
            counters = get_registry().snapshot().counters
            assert counters["service.lease.reclaimed"] >= 1
            assert counters["service.runner.respawned"] >= 1
            assert counters["service.lease.retries"] >= 1
        finally:
            scrape_stop.set()
            scraper.join(timeout=30)
            exporter.stop()
            service.stop()
        assert not scrape_problems, scrape_problems[:5]
        _assert_journal_clean(short_dir / "state")

    def test_permanent_kill_exhausts_retries_into_failed(
        self, short_dir, arch
    ):
        """A job whose every lease dies becomes a first-class failed
        record — never lost, never looping forever."""
        request = _request(arch=arch)
        plan = ServiceFaultPlan(
            specs=[
                ServiceFaultSpec(kind="kill-runner", index=i, attempt=None)
                for i in range(3)
            ]
        )
        service = ReproService(
            short_dir / "state",
            faults=plan,
            max_job_attempts=3,
            **FAST_SUPERVISION,
        )
        try:
            job_id = service.submit(request.to_dict())["job_id"]
            service.start()
            job = _drain(service, job_id)
            assert job["state"] == "failed"
            assert "retries exhausted" in job["error"]
            assert job["attempt"] == 3
            assert plan.fired_count("kill-runner") == 3
            # The fault plan is spent: a resubmission searches clean and
            # still matches the fault-free bytes.
            retry_id = service.submit(request.to_dict())["job_id"]
            retried = _drain(service, retry_id)
            assert retried["state"] == "done"
            assert service.result(retry_id)[
                "solution_json"
            ].encode() == _direct_bytes(request)
        finally:
            service.stop()
        _assert_journal_clean(short_dir / "state")


class TestTornJournal:
    def test_torn_lease_append_kills_daemon_restart_recovers(
        self, short_dir, arch
    ):
        request = _request(arch=arch)
        expected = _direct_bytes(request)
        # Arrivals at the torn-journal point: the submit's "queued"
        # append is 0, the lease's "running" append is 1 — tear the lease.
        plan = ServiceFaultPlan.single("torn-journal", index=1)
        killed = ReproService(
            short_dir / "state", faults=plan, **FAST_SUPERVISION
        )
        job_id = killed.submit(request.to_dict())["job_id"]
        killed.start()
        _wait_until(
            lambda: killed.journal.closed, what="injected journal tear"
        )
        killed.stop()  # the dead daemon's threads wind down
        assert plan.fired_count("torn-journal") == 1

        revived = ReproService(short_dir / "state", **FAST_SUPERVISION)
        try:
            assert revived.status(job_id)["state"] == "queued"
            revived.start()
            job = _drain(revived, job_id)
            assert job["state"] == "done"
            assert revived.result(job_id)["solution_json"].encode() == expected
        finally:
            revived.stop()
        _assert_journal_clean(short_dir / "state")


class TestTornEvents:
    def test_torn_event_append_kills_daemon_restart_reconciles(
        self, short_dir, arch
    ):
        request = _request(arch=arch)
        expected = _direct_bytes(request)
        # Arrivals at the torn-events point: the submit event is 0, the
        # lease event is 1 — tear the lease event on the runner thread.
        plan = ServiceFaultPlan.single("torn-events", index=1)
        killed = ReproService(
            short_dir / "state", faults=plan, **FAST_SUPERVISION
        )
        job_id = killed.submit(request.to_dict())["job_id"]
        killed.start()
        _wait_until(lambda: killed.events.closed, what="injected event tear")
        killed.stop()
        assert plan.fired_count("torn-events") == 1

        # The journal got its "running" record (journal-first), so the
        # restart requeues the job AND reconciles the missing lease
        # event into the truncated log before serving.
        revived = ReproService(short_dir / "state", **FAST_SUPERVISION)
        try:
            assert revived.status(job_id)["state"] == "queued"
            revived.start()
            job = _drain(revived, job_id)
            assert job["state"] == "done"
            assert revived.result(job_id)["solution_json"].encode() == expected
        finally:
            revived.stop()
        _, events = read_events(short_dir / "state" / "events.jsonl")
        assert any(
            e["kind"] == "lease" and e.get("recovered") for e in events
        ), "restart must reconcile the torn lease event"
        _assert_journal_clean(short_dir / "state")  # AD807 over the log


class TestCorruptStore:
    def test_corrupt_object_costs_a_recompute_never_a_wrong_answer(
        self, short_dir, arch
    ):
        request = _request(arch=arch)
        expected = _direct_bytes(request)
        plan = ServiceFaultPlan.single("corrupt-store")
        service = ReproService(
            short_dir / "state", faults=plan, **FAST_SUPERVISION
        )
        try:
            job_id = service.submit(request.to_dict())["job_id"]
            service.start()
            assert _drain(service, job_id)["state"] == "done"
            assert plan.fired_count("corrupt-store") == 1
            # The corrupted object fails its digest check on read...
            with pytest.raises(ValueError, match="evicted"):
                service.result(job_id)
            assert get_registry().counter("store.corrupt").value == 1
            # ...so the resubmission re-searches and republishes the
            # byte-identical document instead of serving garbage.
            retry_id = service.submit(request.to_dict())["job_id"]
            retried = _drain(service, retry_id)
            assert retried["state"] == "done" and retried["source"] == "search"
            assert service.result(retry_id)["solution_json"].encode() == expected
        finally:
            service.stop()
        _assert_journal_clean(short_dir / "state")


class TestDropSocket:
    def test_dropped_submit_response_is_retried_transparently(
        self, short_dir, arch
    ):
        request = _request(arch=arch)
        expected = _direct_bytes(request)
        plan = ServiceFaultPlan.single("drop-socket", op="submit")
        harness = DaemonHarness(
            short_dir / "state", faults=plan, **FAST_SUPERVISION
        ).start()
        try:
            # The first submit is fully processed server-side before the
            # response is dropped; the client's transparent retry then
            # coalesces (or cache-hits) onto it instead of double-running.
            submitted = harness.client.submit(request)
            job = harness.client.wait(submitted["job_id"])
            assert job["state"] == "done"
            assert plan.fired_count("drop-socket") == 1
            result = harness.client.result(submitted["job_id"])
            assert result["solution_json"].encode() == expected
            stats = harness.client.stats()
            assert stats["counters"]["service.searches"] == 1
        finally:
            harness.stop()
        _assert_journal_clean(short_dir / "state")


class TestSigterm:
    def test_injected_sigterm_drains_and_restart_finishes_queued(
        self, short_dir, arch
    ):
        running = _request(arch=arch)
        queued = _request(model="vgg19_bench", arch=arch)
        expected_running = _direct_bytes(running)
        expected_queued = _direct_bytes(queued)
        plan = ServiceFaultPlan.single("sigterm")
        service = ReproService(
            short_dir / "state", faults=plan, runners=1, **FAST_SUPERVISION
        )
        first = service.submit(running.to_dict())["job_id"]
        second = service.submit(queued.to_dict())["job_id"]
        service.start()
        # The drain fires mid-flight: the running job finishes, the
        # queued one survives on disk for the successor daemon.
        _wait_until(lambda: service.journal.closed, what="injected drain")
        assert plan.fired_count("sigterm") == 1
        assert service.status(first)["state"] == "done"
        assert service.status(second)["state"] == "queued"
        with pytest.raises(AdmissionError) as err:
            service.submit(running.to_dict())
        assert err.value.code == "draining"

        revived = ReproService(short_dir / "state", **FAST_SUPERVISION)
        try:
            revived.start()
            assert _drain(revived, second)["state"] == "done"
            assert (
                revived.result(first)["solution_json"].encode()
                == expected_running
            )
            assert (
                revived.result(second)["solution_json"].encode()
                == expected_queued
            )
        finally:
            revived.stop()
        _assert_journal_clean(short_dir / "state")
