"""Tests for the single-engine analytical cost model."""

import pytest

from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import Add, Conv2D, FullyConnected, Pool, Region, TensorShape

ENGINE = EngineConfig(pe_rows=16, pe_cols=16, buffer_bytes=128 * 1024)


@pytest.fixture
def kc():
    return EngineCostModel(ENGINE, get_dataflow("kc"))


@pytest.fixture
def yx():
    return EngineCostModel(ENGINE, get_dataflow("yx"))


class TestConvCosts:
    def test_perfectly_matched_tile_high_utilization(self, kc):
        # ci=co=16 exactly covers the 16x16 array; 8x8 spatial, 3x3 kernel.
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 16),)
        cost = kc.cost(op, x, Region((0, 7), (0, 7), (0, 15)))
        assert cost.uses_pe_array
        assert cost.pe_utilization > 0.9

    def test_mismatched_channels_strand_rows(self, kc):
        # Only 3 input channels: at most 3/16 of the rows can be active.
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 3),)
        cost = kc.cost(op, x, Region((0, 7), (0, 7), (0, 15)))
        assert cost.pe_utilization <= 3 / 16 + 0.01

    def test_reload_bound_tiny_spatial_tile(self, kc):
        # 1x1 conv over a 2x2 tile: temporal loop (4) << weight reload (32).
        op = Conv2D(256, kernel=(1, 1), padding=(0, 0))
        x = (TensorShape(2, 2, 256),)
        cost = kc.cost(op, x, Region((0, 1), (0, 1), (0, 255)))
        assert cost.pe_utilization < 0.2

    def test_cycles_scale_with_channel_passes(self, kc):
        op = Conv2D(16, kernel=(1, 1), padding=(0, 0))
        small = kc.cost(op, (TensorShape(8, 8, 16),), Region((0, 7), (0, 7), (0, 15)))
        big = kc.cost(op, (TensorShape(8, 8, 64),), Region((0, 7), (0, 7), (0, 15)))
        # 4x the input channels -> 4 passes instead of 1 (fill charged once).
        assert big.cycles >= 3 * small.cycles
        assert big.cycles - small.cycles == 3 * (small.cycles - 32)

    def test_macs_independent_of_dataflow(self, kc, yx):
        op = Conv2D(32, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(16, 16, 32),)
        r = Region((0, 15), (0, 15), (0, 31))
        assert kc.cost(op, x, r).macs == yx.cost(op, x, r).macs

    def test_yx_fits_spatial_tiles(self, yx):
        # A 16x16 spatial tile exactly covers the YX array.
        op = Conv2D(8, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(16, 16, 64),)
        cost = yx.cost(op, x, Region((0, 15), (0, 15), (0, 7)))
        assert cost.pe_utilization > 0.8

    def test_traffic_volumes(self, kc):
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 4),)
        r = Region((0, 3), (0, 3), (0, 7))
        cost = kc.cost(op, x, r)
        # ofmap: the region itself at 1 B/elem.
        assert cost.ofmap_bytes == 4 * 4 * 8
        # ifmap: 4x4 tile + 1-halo (5x5, clamped at border) x 4 channels.
        assert cost.ifmap_bytes == 5 * 5 * 4
        # weights: co_tile x ci x kh x kw.
        assert cost.weight_bytes == 8 * 4 * 9

    def test_fc_weight_traffic(self, kc):
        op = FullyConnected(100)
        x = (TensorShape(4, 4, 8),)
        cost = kc.cost(op, x, Region((0, 0), (0, 0), (0, 99)))
        assert cost.weight_bytes == 128 * 100
        assert cost.ifmap_bytes == 128


class TestVectorCosts:
    def test_pool_runs_on_vector_unit(self, kc):
        op = Pool(kind="max", kernel=(2, 2))
        x = (TensorShape(8, 8, 16),)
        cost = kc.cost(op, x, Region((0, 3), (0, 3), (0, 15)))
        assert not cost.uses_pe_array
        assert cost.pe_utilization == 0.0
        assert cost.cycles >= 1

    def test_add_traffic_counts_both_inputs(self, kc):
        op = Add()
        x = TensorShape(4, 4, 8)
        cost = kc.cost(op, (x, x), Region.full(x))
        assert cost.ifmap_bytes == 2 * x.num_elements


class TestMemoizationAndHelpers:
    def test_cost_is_memoized(self, kc):
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 16),)
        r = Region((0, 7), (0, 7), (0, 15))
        assert kc.cost(op, x, r) is kc.cost(op, x, r)

    def test_layer_cost_covers_full_output(self, kc):
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 4),)
        full = kc.layer_cost(op, x)
        assert full.macs == op.macs_for_region(x, Region.full(op.infer_shape(x)))

    def test_bytes_per_element_scales_traffic(self):
        m1 = EngineCostModel(ENGINE, get_dataflow("kc"), bytes_per_element=1)
        m2 = EngineCostModel(ENGINE, get_dataflow("kc"), bytes_per_element=2)
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 4),)
        r = Region((0, 7), (0, 7), (0, 15))
        assert m2.cost(op, x, r).ofmap_bytes == 2 * m1.cost(op, x, r).ofmap_bytes
