"""Tests for per-atom energy accounting."""

from repro.config import EnergyConfig
from repro.engine import atom_energy
from repro.engine.cost_model import EngineCost


def _cost(macs=1000, ifmap=100, weights=50, ofmap=25) -> EngineCost:
    return EngineCost(
        cycles=10,
        macs=macs,
        pe_utilization=0.5,
        uses_pe_array=True,
        ifmap_bytes=ifmap,
        weight_bytes=weights,
        ofmap_bytes=ofmap,
    )


class TestAtomEnergy:
    def test_mac_energy(self):
        e = atom_energy(_cost(macs=1000), EnergyConfig(mac_pj=0.5))
        assert e.mac_pj == 500.0

    def test_sram_energy_counts_all_traffic_bits(self):
        cfg = EnergyConfig(sram_pj_per_bit=0.25)
        e = atom_energy(_cost(ifmap=100, weights=50, ofmap=25), cfg)
        assert e.sram_pj == 8 * 175 * 0.25

    def test_total(self):
        cfg = EnergyConfig(mac_pj=1.0, sram_pj_per_bit=0.0)
        e = atom_energy(_cost(macs=7), cfg)
        assert e.total_pj == e.mac_pj == 7.0

    def test_zero_cost_atom(self):
        e = atom_energy(_cost(macs=0, ifmap=0, weights=0, ofmap=0), EnergyConfig())
        assert e.total_pj == 0.0
