"""Tests for the KC-/YX-Partition spatial dataflows."""

import pytest

from repro.config import EngineConfig
from repro.engine import (
    ConvDims,
    KCPartition,
    YXPartition,
    conv_dims_for_region,
    get_dataflow,
)
from repro.ir import Conv2D, FullyConnected, Pool, Region, TensorShape

ENGINE = EngineConfig(pe_rows=16, pe_cols=16)


class TestConvDims:
    def test_macs(self):
        dims = ConvDims(h=4, w=4, ci=8, co=16, kh=3, kw=3)
        assert dims.macs == 4 * 4 * 8 * 16 * 9

    def test_from_conv_region(self):
        op = Conv2D(32, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(8, 8, 16),)
        dims = conv_dims_for_region(op, x, Region((0, 3), (0, 3), (0, 15)))
        assert (dims.h, dims.w, dims.ci, dims.co) == (4, 4, 16, 16)
        assert (dims.kh, dims.kw) == (3, 3)

    def test_grouped_conv_uses_per_group_ci(self):
        op = Conv2D(32, kernel=(3, 3), padding=(1, 1), groups=4)
        x = (TensorShape(8, 8, 16),)
        dims = conv_dims_for_region(op, x, Region((0, 7), (0, 7), (0, 31)))
        assert dims.ci == 4

    def test_fc_as_1x1_conv(self):
        op = FullyConnected(100)
        x = (TensorShape(7, 7, 64),)
        dims = conv_dims_for_region(op, x, Region((0, 0), (0, 0), (0, 99)))
        assert (dims.h, dims.w, dims.kh, dims.kw) == (1, 1, 1, 1)
        assert dims.ci == 7 * 7 * 64 and dims.co == 100

    def test_vector_op_rejected(self):
        with pytest.raises(TypeError):
            conv_dims_for_region(
                Pool(), (TensorShape(8, 8, 4),), Region((0, 0), (0, 0), (0, 0))
            )


class TestKCPartition:
    def test_spatial_extents_are_channels(self):
        dims = ConvDims(h=4, w=4, ci=32, co=64, kh=3, kw=3)
        assert KCPartition().spatial_extents(dims) == (32, 64)

    def test_temporal_is_spatial_times_kernel(self):
        dims = ConvDims(h=4, w=5, ci=32, co=64, kh=3, kw=3)
        assert KCPartition().temporal_iterations(dims) == 4 * 5 * 9

    def test_atom_tile_scales_channels_by_array(self):
        tile = KCPartition().atom_tile((2, 3, 4, 5), ENGINE)
        assert tile == (2, 3, 4 * 16, 5 * 16)

    def test_weights_per_pass(self):
        dims = ConvDims(h=4, w=4, ci=32, co=64, kh=3, kw=3)
        # Active PEs capped at array dims, refreshed per kernel position.
        assert KCPartition().weight_elements_per_pass(dims, ENGINE) == 16 * 16 * 9


class TestYXPartition:
    def test_spatial_extents_are_hw(self):
        dims = ConvDims(h=4, w=5, ci=32, co=64, kh=3, kw=3)
        assert YXPartition().spatial_extents(dims) == (4, 5)

    def test_atom_tile_scales_spatial_by_array(self):
        tile = YXPartition().atom_tile((2, 3, 4, 5), ENGINE)
        assert tile == (2 * 16, 3 * 16, 4, 5)

    def test_weights_streamed_once_per_pass(self):
        dims = ConvDims(h=32, w=32, ci=8, co=8, kh=3, kw=3)
        assert YXPartition().weight_elements_per_pass(dims, ENGINE) == 8 * 8 * 9


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_dataflow("kc"), KCPartition)
        assert isinstance(get_dataflow("yx"), YXPartition)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown dataflow"):
            get_dataflow("ws")


class TestKCWPartition:
    def test_registry_lookup(self):
        from repro.engine import KCWPartition

        df = get_dataflow("kcw")
        assert isinstance(df, KCWPartition)

    def test_spatial_extents_co_map_width(self):
        from repro.engine import KCWPartition

        df = KCWPartition(width_lanes=4)
        dims = ConvDims(h=8, w=8, ci=32, co=8, kh=3, kw=3)
        assert df.spatial_extents(dims) == (32, 8 * 4)

    def test_width_smaller_than_lanes(self):
        from repro.engine import KCWPartition

        df = KCWPartition(width_lanes=4)
        dims = ConvDims(h=8, w=2, ci=32, co=8, kh=1, kw=1)
        assert df.spatial_extents(dims) == (32, 8 * 2)

    def test_temporal_folds_width(self):
        from repro.engine import KCWPartition

        df = KCWPartition(width_lanes=4)
        dims = ConvDims(h=8, w=8, ci=32, co=8, kh=3, kw=3)
        # w iterates in ceil(8/4)=2 chunks.
        assert df.temporal_iterations(dims) == 8 * 2 * 9

    def test_macs_preserved(self):
        from repro.engine import KCWPartition
        from repro.engine.cost_model import EngineCostModel
        from repro.ir import Conv2D, Region, TensorShape

        kc = EngineCostModel(ENGINE, get_dataflow("kc"))
        kcw = EngineCostModel(ENGINE, get_dataflow("kcw"))
        op = Conv2D(32, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(16, 16, 32),)
        r = Region((0, 15), (0, 15), (0, 31))
        assert kc.cost(op, x, r).macs == kcw.cost(op, x, r).macs

    def test_depthwise_less_reload_bound_than_kc(self):
        from repro.engine.cost_model import EngineCostModel
        from repro.ir import Conv2D, Region, TensorShape

        kc = EngineCostModel(ENGINE, get_dataflow("kc"))
        kcw = EngineCostModel(ENGINE, get_dataflow("kcw"))
        # Depthwise conv: ci per group is 1, KC's rows are nearly idle and
        # every pass is reload-bound; kcw spreads width over columns.
        op = Conv2D(64, kernel=(3, 3), padding=(1, 1), groups=64)
        x = (TensorShape(16, 16, 64),)
        r = Region((0, 15), (0, 15), (0, 63))
        assert (
            kcw.cost(op, x, r).pe_utilization
            >= kc.cost(op, x, r).pe_utilization
        )

    def test_invalid_lanes_rejected(self):
        from repro.engine import KCWPartition
        import pytest as _pytest

        with _pytest.raises(ValueError):
            KCWPartition(width_lanes=0)
