"""Unit tests for the structure-of-arrays cost-kernel plumbing.

The deeper scalar≡batch equivalence lives in the Hypothesis suite
(``tests/properties/test_batch_equivalence.py``); these tests pin the
plumbing around it: bounds-array layout, statics memoization, and the
batch-call accounting the pipeline exports per candidate.
"""

import numpy as np

from repro.atoms import TileSize
from repro.atoms.partition import TileGrid, grid_bounds
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.engine.batch import BOUND_COLUMNS, region_bounds
from repro.ir import Conv2D, TensorShape


class TestBoundsArrays:
    def test_grid_bounds_match_region_list(self):
        grid = TileGrid(TensorShape(13, 9, 20), TileSize(4, 4, 8, 8))
        direct = region_bounds(grid.regions())
        fast = grid_bounds(grid)
        assert fast.dtype == np.int64
        assert np.array_equal(fast, direct)

    def test_region_bounds_column_layout(self):
        grid = TileGrid(TensorShape(8, 8, 8), TileSize(8, 8, 8, 8))
        (row,) = region_bounds(grid.regions())
        assert len(BOUND_COLUMNS) == 6
        assert row.tolist() == [0, 7, 0, 7, 0, 7]


class TestKernelAccounting:
    def _model(self):
        return EngineCostModel(EngineConfig(), get_dataflow("kc"))

    def test_statics_memoized(self):
        cm = self._model()
        op = Conv2D(out_channels=8, kernel=(3, 3))
        shapes = (TensorShape(16, 16, 8),)
        assert cm.kernel.statics(op, shapes) is cm.kernel.statics(op, shapes)

    def test_batch_counters_track_calls_and_rows(self):
        cm = self._model()
        op = Conv2D(out_channels=8, kernel=(3, 3))
        shapes = (TensorShape(16, 16, 8),)
        grid = TileGrid(op.infer_shape(shapes), TileSize(4, 4, 4, 8))
        calls0, rows0 = cm.kernel.batch_counters()
        cm.kernel.price_regions(op, shapes, grid_bounds(grid))
        calls1, rows1 = cm.kernel.batch_counters()
        assert calls1 == calls0 + 1
        assert rows1 == rows0 + grid.num_tiles
