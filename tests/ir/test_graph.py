"""Tests for the Graph DAG container."""

import pytest

from repro.ir import Conv2D, Graph, GraphBuilder, ReLU, TensorShape


def _chain() -> Graph:
    g = Graph(name="t")
    i = g.add_input(TensorShape(8, 8, 4))
    c = g.add(Conv2D(8, kernel=(3, 3), padding=(1, 1)), (i,), "conv")
    g.add(ReLU(), (c,), "relu")
    return g


class TestGraphConstruction:
    def test_insertion_assigns_dense_ids(self):
        g = _chain()
        assert [n.node_id for n in g.nodes] == [0, 1, 2]

    def test_shape_inference_on_add(self):
        g = _chain()
        assert g.by_name("conv").output_shape == TensorShape(8, 8, 8)

    def test_forward_reference_rejected(self):
        g = Graph()
        g.add_input(TensorShape(4, 4, 4))
        with pytest.raises(ValueError):
            g.add(ReLU(), (5,))

    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add_input(TensorShape(4, 4, 4), "x")
        with pytest.raises(ValueError):
            g.add_input(TensorShape(4, 4, 4), "x")

    def test_auto_names_unique(self):
        g = Graph()
        i = g.add_input(TensorShape(4, 4, 4))
        a = g.add(ReLU(), (i,))
        b = g.add(ReLU(), (a,))
        assert g.node(a).name != g.node(b).name


class TestGraphViews:
    def test_sources_and_sinks(self):
        g = _chain()
        assert g.sources() == (0,)
        assert g.sinks() == (2,)

    def test_consumers(self):
        g = _chain()
        cons = g.consumers()
        assert cons[0] == (1,)
        assert cons[1] == (2,)
        assert cons[2] == ()

    def test_depths_linear(self):
        g = _chain()
        assert g.depths() == {0: 0, 1: 1, 2: 2}

    def test_depths_longest_path(self, residual_graph):
        # The join's depth is via the longer conv branch, not the shortcut.
        g = residual_graph
        depths = g.depths()
        join = g.by_name("join")
        branch_end = g.by_name("c2")
        short = g.by_name("proj")
        assert depths[join.node_id] == depths[branch_end.node_id] + 1
        assert depths[join.node_id] > depths[short.node_id] + 1

    def test_input_shapes(self):
        g = _chain()
        assert g.input_shapes(1) == (TensorShape(8, 8, 4),)


class TestGraphStats:
    def test_num_params_counts_weights_and_bias(self):
        g = _chain()
        assert g.num_params() == 8 * 4 * 9 + 8

    def test_total_macs(self):
        g = _chain()
        conv_macs = 8 * 8 * 8 * 4 * 9
        relu_ops = 8 * 8 * 8
        assert g.total_macs() == conv_macs + relu_ops

    def test_compute_nodes(self):
        g = _chain()
        assert [n.name for n in g.compute_nodes()] == ["conv"]


class TestValidation:
    def test_valid_graph_passes(self, residual_graph, branching_graph):
        residual_graph.validate()
        branching_graph.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Graph().validate()

    def test_builder_validates_on_build(self):
        b = GraphBuilder(name="ok")
        x = b.input(8, 8, 3)
        b.conv(x, 8)
        g = b.build()
        assert len(g) == 2
