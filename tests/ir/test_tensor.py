"""Tests for TensorShape."""

import pytest

from repro.ir import TensorShape


class TestTensorShape:
    def test_num_elements(self):
        assert TensorShape(4, 5, 6).num_elements == 120

    def test_size_bytes_default_int8(self):
        assert TensorShape(2, 2, 2).size_bytes() == 8

    def test_size_bytes_wider_elements(self):
        assert TensorShape(2, 2, 2).size_bytes(bytes_per_element=2) == 16

    def test_str_format(self):
        assert str(TensorShape(224, 224, 3)) == "224x224x3"

    @pytest.mark.parametrize("h,w,c", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_non_positive_dims(self, h, w, c):
        with pytest.raises(ValueError):
            TensorShape(h, w, c)

    def test_hashable_and_equal(self):
        assert TensorShape(1, 2, 3) == TensorShape(1, 2, 3)
        assert len({TensorShape(1, 2, 3), TensorShape(1, 2, 3)}) == 1
