"""Tests for multi-graph composition."""

import pytest

from repro.ir import GraphBuilder, merge_graphs, subgraph_layers


def _net(name: str, channels: int = 8):
    b = GraphBuilder(name=name)
    x = b.input(8, 8, 4)
    x = b.conv(x, channels, name="c1")
    b.conv(x, channels, name="c2")
    return b.build()


class TestMergeGraphs:
    def test_union_of_nodes(self):
        a, b = _net("a"), _net("b", channels=16)
        merged = merge_graphs([a, b])
        assert len(merged) == len(a) + len(b)
        assert merged.name == "a+b"

    def test_two_independent_inputs(self):
        merged = merge_graphs([_net("a"), _net("b")])
        assert len(merged.sources()) == 2
        assert len(merged.sinks()) == 2

    def test_no_cross_edges(self):
        a, b = _net("a"), _net("b")
        merged = merge_graphs([a, b])
        a_ids = set(subgraph_layers(merged, "a"))
        b_ids = set(subgraph_layers(merged, "b"))
        for node in merged.nodes:
            for src in node.inputs:
                same_side = (node.node_id in a_ids) == (src in a_ids)
                assert same_side

    def test_name_prefixing(self):
        merged = merge_graphs([_net("a"), _net("b")])
        assert merged.by_name("a/c1") is not None
        assert merged.by_name("b/c1") is not None

    def test_same_graph_twice_disambiguated(self):
        n = _net("net")
        merged = merge_graphs([n, n])
        assert merged.by_name("net/c1") is not None
        assert merged.by_name("net#1/c1") is not None

    def test_single_graph_rejected(self):
        with pytest.raises(ValueError):
            merge_graphs([_net("a")])

    def test_shapes_preserved(self):
        a = _net("a", channels=8)
        merged = merge_graphs([a, _net("b", channels=16)])
        assert (
            merged.by_name("a/c2").output_shape
            == a.by_name("c2").output_shape
        )

    def test_subgraph_layers_partition_nodes(self):
        merged = merge_graphs([_net("a"), _net("b")])
        a_ids = subgraph_layers(merged, "a")
        b_ids = subgraph_layers(merged, "b")
        assert len(a_ids) + len(b_ids) == len(merged)
        assert not set(a_ids) & set(b_ids)


class TestMergedScheduling:
    def test_merged_graph_optimizes(self):
        from repro.atoms.generation import SAParams
        from repro.config import ArchConfig, EngineConfig
        from repro.framework import AtomicDataflowOptimizer, OptimizerOptions

        arch = ArchConfig(
            mesh_rows=2, mesh_cols=2,
            engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024),
        )
        merged = merge_graphs([_net("a"), _net("b")])
        outcome = AtomicDataflowOptimizer(
            merged, arch,
            OptimizerOptions(
                scheduler="greedy", sa_params=SAParams(max_iterations=10)
            ),
        ).optimize()
        outcome.schedule.validate(outcome.dag, arch.num_engines)
        # Atoms from both tenants appear in the schedule.
        layers = {outcome.dag.atoms[a].layer for a in range(outcome.dag.num_atoms)}
        a_ids = set(subgraph_layers(outcome.dag.graph, "a"))
        b_ids = set(subgraph_layers(outcome.dag.graph, "b"))
        assert layers & a_ids and layers & b_ids
