"""Tests for operator shape inference, MAC counting, and receptive fields."""

import pytest

from repro.ir import (
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    FullyConnected,
    GlobalPool,
    Input,
    Pool,
    Region,
    ReLU,
    Scale,
    TensorShape,
)


class TestRegion:
    def test_full_covers_shape(self):
        r = Region.full(TensorShape(4, 5, 6))
        assert (r.height, r.width, r.channels) == (4, 5, 6)
        assert r.num_elements == 120

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Region((2, 1), (0, 0), (0, 0))

    def test_rejects_negative_bounds(self):
        with pytest.raises(ValueError):
            Region((-1, 0), (0, 0), (0, 0))

    def test_intersection_overlapping(self):
        a = Region((0, 3), (0, 3), (0, 3))
        b = Region((2, 5), (1, 2), (0, 0))
        got = a.intersection(b)
        assert got == Region((2, 3), (1, 2), (0, 0))

    def test_intersection_disjoint_is_none(self):
        a = Region((0, 1), (0, 1), (0, 1))
        b = Region((5, 6), (0, 1), (0, 1))
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_intersects_is_symmetric(self):
        a = Region((0, 3), (0, 3), (0, 3))
        b = Region((3, 4), (2, 7), (1, 2))
        assert a.intersects(b) and b.intersects(a)


class TestConv2D:
    def test_same_padding_preserves_spatial(self):
        op = Conv2D(16, kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        assert op.infer_shape((TensorShape(8, 8, 4),)) == TensorShape(8, 8, 16)

    def test_stride_halves_spatial(self):
        op = Conv2D(16, kernel=(3, 3), stride=(2, 2), padding=(1, 1))
        assert op.infer_shape((TensorShape(8, 8, 4),)) == TensorShape(4, 4, 16)

    def test_valid_padding_shrinks(self):
        op = Conv2D(16, kernel=(3, 3), stride=(1, 1), padding=(0, 0))
        assert op.infer_shape((TensorShape(8, 8, 4),)) == TensorShape(6, 6, 16)

    def test_collapsing_conv_raises(self):
        op = Conv2D(16, kernel=(5, 5), stride=(1, 1), padding=(0, 0))
        with pytest.raises(ValueError):
            op.infer_shape((TensorShape(3, 3, 4),))

    def test_macs_full_layer(self):
        op = Conv2D(16, kernel=(3, 3), padding=(1, 1))
        x = TensorShape(8, 8, 4)
        out = op.infer_shape((x,))
        # H*W*Co * Ci * Kh*Kw
        assert op.macs_for_region((x,), Region.full(out)) == 8 * 8 * 16 * 4 * 9

    def test_weight_params(self):
        op = Conv2D(16, kernel=(3, 3))
        assert op.weight_params((TensorShape(8, 8, 4),)) == 16 * 4 * 9 + 16

    def test_receptive_field_interior(self):
        op = Conv2D(16, kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        x = TensorShape(8, 8, 4)
        r = op.input_region(0, (x,), Region((2, 3), (2, 3), (0, 15)))
        assert r.h == (1, 4) and r.w == (1, 4)
        assert r.c == (0, 3)  # all input channels

    def test_receptive_field_clamped_at_border(self):
        op = Conv2D(16, kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        x = TensorShape(8, 8, 4)
        r = op.input_region(0, (x,), Region((0, 0), (0, 0), (0, 15)))
        assert r.h == (0, 1) and r.w == (0, 1)

    def test_strided_receptive_field(self):
        op = Conv2D(16, kernel=(3, 3), stride=(2, 2), padding=(1, 1))
        x = TensorShape(8, 8, 4)
        r = op.input_region(0, (x,), Region((1, 1), (1, 1), (0, 0)))
        assert r.h == (1, 3) and r.w == (1, 3)

    def test_depthwise_group_channel_mapping(self):
        op = Conv2D(8, kernel=(3, 3), padding=(1, 1), groups=8)
        x = TensorShape(8, 8, 8)
        r = op.input_region(0, (x,), Region((0, 7), (0, 7), (2, 4)))
        assert r.c == (2, 4)  # depthwise: output ch g reads input ch g

    def test_depthwise_macs_exclude_cross_channel(self):
        op = Conv2D(8, kernel=(3, 3), padding=(1, 1), groups=8)
        x = TensorShape(8, 8, 8)
        out = op.infer_shape((x,))
        assert op.macs_for_region((x,), Region.full(out)) == 8 * 8 * 8 * 9

    def test_groups_must_divide_out_channels(self):
        with pytest.raises(ValueError):
            Conv2D(8, groups=3)

    def test_groups_must_divide_in_channels(self):
        op = Conv2D(9, groups=3)
        with pytest.raises(ValueError):
            op.infer_shape((TensorShape(4, 4, 8),))


class TestFullyConnected:
    def test_shape(self):
        op = FullyConnected(100)
        assert op.infer_shape((TensorShape(7, 7, 64),)) == TensorShape(1, 1, 100)

    def test_reads_whole_input(self):
        op = FullyConnected(100)
        x = TensorShape(7, 7, 64)
        assert op.input_region(0, (x,), Region((0, 0), (0, 0), (0, 9))) == Region.full(x)

    def test_macs(self):
        op = FullyConnected(10)
        x = TensorShape(2, 2, 4)
        out = op.infer_shape((x,))
        assert op.macs_for_region((x,), Region.full(out)) == 10 * 16


class TestPool:
    def test_default_stride_equals_kernel(self):
        op = Pool(kind="max", kernel=(2, 2))
        assert op.stride == (2, 2)
        assert op.infer_shape((TensorShape(8, 8, 4),)) == TensorShape(4, 4, 4)

    def test_overlapping_pool(self):
        op = Pool(kind="max", kernel=(3, 3), stride=(1, 1), padding=(1, 1))
        assert op.infer_shape((TensorShape(8, 8, 4),)) == TensorShape(8, 8, 4)

    def test_pool_preserves_channel_slice(self):
        op = Pool(kind="avg", kernel=(2, 2))
        x = TensorShape(8, 8, 4)
        r = op.input_region(0, (x,), Region((0, 1), (0, 1), (1, 2)))
        assert r.c == (1, 2)
        assert r.h == (0, 3) and r.w == (0, 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Pool(kind="median")


class TestGlobalPool:
    def test_collapses_spatial(self):
        op = GlobalPool()
        assert op.infer_shape((TensorShape(7, 7, 64),)) == TensorShape(1, 1, 64)

    def test_reads_full_spatial_extent(self):
        op = GlobalPool()
        x = TensorShape(7, 7, 64)
        r = op.input_region(0, (x,), Region((0, 0), (0, 0), (3, 7)))
        assert r.h == (0, 6) and r.w == (0, 6) and r.c == (3, 7)


class TestElementwise:
    @pytest.mark.parametrize("op", [ReLU(), BatchNorm()])
    def test_identity_shape(self, op):
        assert op.infer_shape((TensorShape(4, 4, 4),)) == TensorShape(4, 4, 4)

    def test_region_passthrough(self):
        r = Region((1, 2), (1, 2), (0, 3))
        assert ReLU().input_region(0, (TensorShape(4, 4, 4),), r) == r

    def test_batchnorm_params(self):
        assert BatchNorm().weight_params((TensorShape(4, 4, 32),)) == 64


class TestAdd:
    def test_shape_and_arity(self):
        op = Add(arity=3)
        x = TensorShape(4, 4, 8)
        assert op.infer_shape((x, x, x)) == x

    def test_mismatched_shapes_rejected(self):
        op = Add()
        with pytest.raises(ValueError):
            op.infer_shape((TensorShape(4, 4, 8), TensorShape(4, 4, 16)))

    def test_all_inputs_see_same_region(self):
        op = Add()
        x = TensorShape(4, 4, 8)
        r = Region((0, 1), (2, 3), (4, 7))
        assert op.input_region(0, (x, x), r) == r
        assert op.input_region(1, (x, x), r) == r


class TestScale:
    def test_shape(self):
        op = Scale()
        x = TensorShape(4, 4, 8)
        s = TensorShape(1, 1, 8)
        assert op.infer_shape((x, s)) == x

    def test_gate_shape_must_match_channels(self):
        op = Scale()
        with pytest.raises(ValueError):
            op.infer_shape((TensorShape(4, 4, 8), TensorShape(1, 1, 4)))

    def test_gate_region_is_channel_slice(self):
        op = Scale()
        x, s = TensorShape(4, 4, 8), TensorShape(1, 1, 8)
        r = Region((0, 3), (0, 3), (2, 5))
        assert op.input_region(1, (x, s), r) == Region((0, 0), (0, 0), (2, 5))


class TestConcat:
    def test_channel_sum(self):
        op = Concat(arity=2)
        shapes = (TensorShape(4, 4, 8), TensorShape(4, 4, 16))
        assert op.infer_shape(shapes) == TensorShape(4, 4, 24)

    def test_spatial_mismatch_rejected(self):
        op = Concat()
        with pytest.raises(ValueError):
            op.infer_shape((TensorShape(4, 4, 8), TensorShape(2, 2, 8)))

    def test_channel_offset_mapping(self):
        op = Concat(arity=2)
        shapes = (TensorShape(4, 4, 8), TensorShape(4, 4, 8))
        # Output channels 10..13 live in input 1 at channels 2..5.
        r = Region((0, 3), (0, 3), (10, 13))
        assert op.input_region(1, shapes, r).c == (2, 5)

    def test_overlaps_input(self):
        op = Concat(arity=2)
        shapes = (TensorShape(4, 4, 8), TensorShape(4, 4, 8))
        r = Region((0, 3), (0, 3), (10, 13))
        assert not op.overlaps_input(0, shapes, r)
        assert op.overlaps_input(1, shapes, r)

    def test_region_spanning_both_inputs(self):
        op = Concat(arity=2)
        shapes = (TensorShape(4, 4, 8), TensorShape(4, 4, 8))
        r = Region((0, 0), (0, 0), (6, 9))
        assert op.overlaps_input(0, shapes, r)
        assert op.overlaps_input(1, shapes, r)
        assert op.input_region(0, shapes, r).c == (6, 7)
        assert op.input_region(1, shapes, r).c == (0, 1)


class TestInput:
    def test_shape_passthrough(self):
        op = Input(TensorShape(8, 8, 3))
        assert op.infer_shape(()) == TensorShape(8, 8, 3)

    def test_no_inputs_allowed(self):
        op = Input(TensorShape(8, 8, 3))
        with pytest.raises(ValueError):
            op.infer_shape((TensorShape(1, 1, 1),))
