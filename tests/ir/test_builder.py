"""Tests for GraphBuilder helpers and the spec deserializer."""

import pytest

from repro.ir import Conv2D, GraphBuilder, TensorShape, graph_from_spec


class TestBuilderHelpers:
    def test_same_padding_from_kernel(self):
        b = GraphBuilder()
        x = b.input(8, 8, 3)
        c = b.conv(x, 8, kernel=5, padding="same")
        assert b.graph.node(c).output_shape == TensorShape(8, 8, 8)

    def test_valid_padding(self):
        b = GraphBuilder()
        x = b.input(8, 8, 3)
        c = b.conv(x, 8, kernel=3, padding="valid")
        assert b.graph.node(c).output_shape == TensorShape(6, 6, 8)

    def test_depthwise_uses_groups(self):
        b = GraphBuilder()
        x = b.input(8, 8, 16)
        d = b.depthwise_conv(x)
        op = b.graph.node(d).op
        assert isinstance(op, Conv2D) and op.groups == 16

    def test_separable_conv_is_dw_plus_pw(self):
        b = GraphBuilder()
        x = b.input(8, 8, 16)
        s = b.separable_conv(x, 32, name="sep")
        assert b.graph.node(s).output_shape == TensorShape(8, 8, 32)
        assert b.graph.by_name("sep_dw").op.groups == 16
        assert b.graph.by_name("sep_pw").op.kernel == (1, 1)

    def test_conv_bn_relu_folds_bn_by_default(self):
        b = GraphBuilder()
        x = b.input(8, 8, 3)
        b.conv_bn_relu(x, 8, name="blk")
        names = [n.name for n in b.graph.nodes]
        assert "blk_conv" in names and "blk_relu" in names
        assert "blk_bn" not in names

    def test_conv_bn_relu_explicit_bn(self):
        b = GraphBuilder(fold_batchnorm=False)
        x = b.input(8, 8, 3)
        b.conv_bn_relu(x, 8, name="blk")
        assert "blk_bn" in [n.name for n in b.graph.nodes]

    def test_se_style_scale_wiring(self):
        b = GraphBuilder()
        x = b.input(8, 8, 16)
        g = b.global_avg_pool(x)
        g = b.fc(g, 16)
        g = b.sigmoid(g)
        y = b.scale(x, g)
        assert b.graph.node(y).output_shape == TensorShape(8, 8, 16)

    def test_rectangular_kernels(self):
        b = GraphBuilder()
        x = b.input(8, 8, 3)
        c = b.conv(x, 8, kernel=(1, 7), padding=(0, 3))
        assert b.graph.node(c).output_shape == TensorShape(8, 8, 8)


class TestGraphFromSpec:
    def test_round_trips_simple_net(self):
        g = graph_from_spec(
            {
                "name": "tiny",
                "input": [8, 8, 3],
                "layers": [
                    {"op": "conv", "src": "input", "out_channels": 8, "name": "c1"},
                    {"op": "relu", "src": -1},
                    {"op": "conv", "src": -1, "out_channels": 8, "name": "c2"},
                    {"op": "add", "src": ["c1", -1]},
                    {"op": "gap", "src": -1},
                    {"op": "fc", "src": -1, "out_features": 10},
                ],
            }
        )
        assert g.name == "tiny"
        assert g.node(g.sinks()[0]).output_shape == TensorShape(1, 1, 10)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown spec op"):
            graph_from_spec(
                {"input": [8, 8, 3], "layers": [{"op": "warp", "src": -1}]}
            )

    def test_name_and_negative_refs_agree(self):
        spec = {
            "input": [8, 8, 3],
            "layers": [
                {"op": "conv", "src": 0, "out_channels": 4, "name": "a"},
                {"op": "conv", "src": "a", "out_channels": 4, "name": "b"},
                {"op": "add", "src": ["a", "b"]},
            ],
        }
        g = graph_from_spec(spec)
        add_node = g.node(g.sinks()[0])
        assert add_node.inputs == (
            g.by_name("a").node_id,
            g.by_name("b").node_id,
        )


class TestGraphToSpec:
    def test_round_trip_identity(self, residual_graph):
        from repro.ir import graph_from_spec, graph_to_spec

        spec = graph_to_spec(residual_graph)
        rebuilt = graph_from_spec(spec)
        assert len(rebuilt) == len(residual_graph)
        for a, b in zip(residual_graph.nodes, rebuilt.nodes):
            assert a.name == b.name
            assert a.op == b.op
            assert a.inputs == b.inputs
            assert a.output_shape == b.output_shape

    def test_json_serializable(self, branching_graph):
        import json

        from repro.ir import graph_to_spec

        spec = graph_to_spec(branching_graph)
        rebuilt = json.loads(json.dumps(spec))
        assert rebuilt["name"] == branching_graph.name

    def test_multi_input_rejected(self):
        from repro.ir import graph_to_spec, merge_graphs

        b1 = GraphBuilder(name="a")
        x = b1.input(4, 4, 4)
        b1.conv(x, 4, name="c")
        b2 = GraphBuilder(name="b")
        x = b2.input(4, 4, 4)
        b2.conv(x, 4, name="c")
        merged = merge_graphs([b1.build(), b2.build()])
        with pytest.raises(ValueError, match="one input"):
            graph_to_spec(merged)
