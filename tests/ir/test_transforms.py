"""Tests for the elementwise-fusion transform."""

from repro.ir import Add, Conv2D, GraphBuilder, ReLU
from repro.ir.transforms import fuse_elementwise


class TestFuseElementwise:
    def test_relu_folds_into_conv(self, chain_graph):
        res = fuse_elementwise(chain_graph)
        ops = [type(n.op).__name__ for n in res.graph.nodes]
        assert "ReLU" not in ops
        assert ops.count("Conv2D") == 2

    def test_consumers_rewired_through_fused_node(self, chain_graph):
        res = fuse_elementwise(chain_graph)
        # c2's conv must now consume c1's conv directly.
        c1 = res.graph.by_name("c1_conv")
        c2 = res.graph.by_name("c2_conv")
        assert c2.inputs == (c1.node_id,)

    def test_fused_counts_recorded(self, chain_graph):
        res = fuse_elementwise(chain_graph)
        c1 = res.graph.by_name("c1_conv").node_id
        assert res.fused_counts[c1] == 1

    def test_node_map_covers_all_original_nodes(self, residual_graph):
        res = fuse_elementwise(residual_graph)
        assert set(res.node_map) == {n.node_id for n in residual_graph.nodes}

    def test_add_not_fused(self, residual_graph):
        res = fuse_elementwise(residual_graph)
        assert any(isinstance(n.op, Add) for n in res.graph.nodes)

    def test_chain_of_fusables_collapses(self):
        b = GraphBuilder(fold_batchnorm=False)
        x = b.input(8, 8, 3)
        b.conv_bn_relu(x, 8, name="blk")  # conv -> bn -> relu
        res = fuse_elementwise(b.build())
        assert len(res.graph) == 2  # input + conv
        assert isinstance(res.graph.nodes[1].op, Conv2D)

    def test_shapes_preserved(self, branching_graph):
        res = fuse_elementwise(branching_graph)
        assert (
            res.graph.node(res.graph.sinks()[0]).output_shape
            == branching_graph.node(branching_graph.sinks()[0]).output_shape
        )

    def test_trailing_relu_on_sink_is_fused(self):
        b = GraphBuilder()
        x = b.input(8, 8, 3)
        c = b.conv(x, 8, name="c")
        b.graph.add(ReLU(), (c,), "final_relu")
        res = fuse_elementwise(b.graph)
        assert res.graph.sinks() == (res.graph.by_name("c").node_id,)
