"""Tests for Round/Schedule data types and validation."""

import pytest

from repro.scheduling import Round, Schedule, schedule_greedy


class TestScheduleValidation:
    def test_valid_schedule_passes(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        schedule.validate(chain_dag, 4)

    def test_missing_atom_rejected(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        schedule.rounds = schedule.rounds[:-1]
        with pytest.raises(ValueError, match="covers"):
            schedule.validate(chain_dag, 4)

    def test_duplicate_atom_rejected(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        first = schedule.rounds[0].atom_indices[0]
        schedule.rounds.append(
            Round(index=len(schedule.rounds), atom_indices=(first,))
        )
        with pytest.raises(ValueError, match="twice"):
            schedule.validate(chain_dag, 4)

    def test_over_capacity_round_rejected(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        with pytest.raises(ValueError, match="engines"):
            schedule.validate(chain_dag, 2)

    def test_dependency_violation_rejected(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        # Reverse the rounds: consumers now run before producers.
        schedule.rounds = [
            Round(index=i, atom_indices=r.atom_indices)
            for i, r in enumerate(reversed(schedule.rounds))
        ]
        with pytest.raises(ValueError, match="depends"):
            schedule.validate(chain_dag, 4)

    def test_empty_round_rejected(self, chain_dag):
        schedule = Schedule(rounds=[Round(index=0, atom_indices=())])
        with pytest.raises(ValueError, match="empty"):
            schedule.validate(chain_dag, 4)


class TestScheduleHelpers:
    def test_atom_round_map(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        mapping = schedule.atom_round()
        assert len(mapping) == chain_dag.num_atoms
        for rnd in schedule.rounds:
            for a in rnd.atom_indices:
                assert mapping[a] == rnd.index

    def test_compute_cycles_sums_round_maxima(self, chain_dag):
        schedule = schedule_greedy(chain_dag, num_engines=4)
        expected = sum(
            max(chain_dag.costs[a].cycles for a in r.atom_indices)
            for r in schedule.rounds
        )
        assert schedule.compute_cycles(chain_dag) == expected

    def test_round_len(self):
        assert len(Round(index=0, atom_indices=(1, 2, 3))) == 3
