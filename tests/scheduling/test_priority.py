"""Tests for the scheduler state and the four priority rules."""

import pytest

from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.ir import GraphBuilder
from repro.ir.transforms import fuse_elementwise
from repro.scheduling import (
    SchedulerState,
    candidate_combinations,
    classify_ready,
    fill_by_priority,
)


def _two_branch_dag(kc_model):
    """Two parallel convs at the same depth feeding a concat."""
    b = GraphBuilder(name="par")
    x = b.input(8, 8, 8)
    l = b.conv(x, 8, kernel=1, name="left")
    r = b.conv(x, 8, kernel=1, name="right")
    b.concat(l, r, name="join")
    g = fuse_elementwise(b.build()).graph
    tiling = uniform_tiling(g, TileSize(4, 4, 8, 8))
    return g, build_atomic_dag(g, tiling, kc_model)


class TestSchedulerState:
    def test_initial_ready_set_is_sources(self, chain_dag):
        state = SchedulerState(chain_dag)
        assert state.ready == {
            i for i in range(chain_dag.num_atoms) if not chain_dag.preds[i]
        }

    def test_commit_unlocks_successors(self, chain_dag):
        state = SchedulerState(chain_dag)
        first = tuple(sorted(state.ready))
        state.commit(first)
        assert state.remaining == chain_dag.num_atoms - len(first)
        # All of layer 2's atoms become ready once layer 1 is done.
        assert state.ready

    def test_commit_unready_atom_rejected(self, chain_dag):
        state = SchedulerState(chain_dag)
        not_ready = next(
            i for i in range(chain_dag.num_atoms) if chain_dag.preds[i]
        )
        with pytest.raises(ValueError):
            state.commit((not_ready,))

    def test_double_commit_rejected(self, chain_dag):
        state = SchedulerState(chain_dag)
        a = next(iter(state.ready))
        state.commit((a,))
        with pytest.raises(ValueError):
            state.commit((a,))

    def test_current_sample_advances(self, chain_graph, kc_model):
        g = fuse_elementwise(chain_graph).graph
        tiling = uniform_tiling(g, TileSize(16, 16, 8, 8))
        dag = build_atomic_dag(g, tiling, kc_model, batch=2)
        state = SchedulerState(dag)
        assert state.current_sample() == 0
        for a in [i for i in range(dag.num_atoms) if dag.atoms[i].sample == 0]:
            if a in state.ready:
                state.commit((a,))
        # Drain sample 0 completely.
        while any(
            not state.scheduled[i]
            for i in range(dag.num_atoms)
            if dag.atoms[i].sample == 0
        ):
            ready0 = [a for a in state.ready if dag.atoms[a].sample == 0]
            state.commit(tuple(ready0))
        assert state.current_sample() == 1


class TestPriorityRules:
    def test_rule1_prefers_started_layers(self, kc_model):
        g, dag = _two_branch_dag(kc_model)
        state = SchedulerState(dag)
        left = g.by_name("left").node_id
        l_atoms = list(dag.atoms_of_layer(left))
        # Start 'left' but leave atoms remaining.
        state.commit((l_atoms[0],))
        level1, level2, _, _ = classify_ready(state)
        assert set(level1) == set(l_atoms[1:])

    def test_rule2_same_depth_layers(self, kc_model):
        g, dag = _two_branch_dag(kc_model)
        state = SchedulerState(dag)
        left = g.by_name("left").node_id
        right = g.by_name("right").node_id
        state.commit((dag.atoms_of_layer(left)[0],))
        _, level2, _, _ = classify_ready(state)
        # 'right' shares the depth of in-progress 'left'.
        assert set(level2) == set(dag.atoms_of_layer(right))

    def test_rule4_defers_next_sample(self, chain_graph, kc_model):
        g = fuse_elementwise(chain_graph).graph
        tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
        dag = build_atomic_dag(g, tiling, kc_model, batch=2)
        state = SchedulerState(dag)
        levels = classify_ready(state)
        assert all(dag.atoms[a].sample == 0 for a in levels[0] + levels[1] + levels[2])
        assert all(dag.atoms[a].sample == 1 for a in levels[3])

    def test_fill_caps_at_engine_count(self, chain_dag):
        state = SchedulerState(chain_dag)
        chosen = fill_by_priority(state, num_engines=2)
        assert len(chosen) == 2

    def test_fill_spills_into_lower_levels(self, kc_model):
        g, dag = _two_branch_dag(kc_model)
        state = SchedulerState(dag)
        left = g.by_name("left").node_id
        state.commit((dag.atoms_of_layer(left)[0],))
        chosen = fill_by_priority(state, num_engines=8)
        # 3 remaining left atoms (level 1), then right atoms (level 2), then
        # the one concat tile whose only input (left tile 0) is complete.
        layers = [dag.atoms[a].layer for a in chosen]
        right = g.by_name("right").node_id
        assert layers.count(left) == 3
        assert layers.count(right) == 4
        assert len(chosen) == 8
        # Priority ordering: left atoms come before right atoms.
        assert layers.index(right) >= 3


class TestCandidateCombinations:
    def test_options_nonempty_and_unique(self, chain_dag):
        state = SchedulerState(chain_dag)
        options = candidate_combinations(state, num_engines=2)
        assert options
        assert len(set(options)) == len(options)

    def test_options_are_schedulable(self, chain_dag):
        state = SchedulerState(chain_dag)
        for combo in candidate_combinations(state, num_engines=4):
            assert set(combo) <= state.ready
            assert len(combo) <= 4

    def test_empty_when_exhausted(self, chain_dag):
        state = SchedulerState(chain_dag)
        while state.remaining:
            combo = tuple(fill_by_priority(state, 64))
            state.commit(combo)
        assert candidate_combinations(state, 4) == []
