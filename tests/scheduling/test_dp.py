"""Tests for exact DP and the pruned lookahead scheduler."""

import pytest

from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.ir import GraphBuilder
from repro.ir.transforms import fuse_elementwise
from repro.scheduling import (
    SearchBudgetExceeded,
    schedule_exact_dp,
    schedule_greedy,
    schedule_pruned,
)


def _tiny_dag(kc_model, tiles=TileSize(4, 8, 16, 16)):
    b = GraphBuilder(name="tiny")
    x = b.input(8, 8, 16)
    c1 = b.conv(x, 16, kernel=3, name="c1")
    b.conv(c1, 16, kernel=3, name="c2")
    g = fuse_elementwise(b.build()).graph
    return build_atomic_dag(g, uniform_tiling(g, tiles), kc_model)


class TestExactDP:
    def test_schedule_is_valid(self, kc_model):
        dag = _tiny_dag(kc_model)
        schedule, _ = schedule_exact_dp(dag, 2)
        schedule.validate(dag, 2)

    def test_cost_matches_reconstruction(self, kc_model):
        dag = _tiny_dag(kc_model)
        schedule, cost = schedule_exact_dp(dag, 2)
        assert cost == pytest.approx(schedule.compute_cycles(dag))

    def test_never_worse_than_greedy(self, kc_model):
        dag = _tiny_dag(kc_model)
        exact, cost = schedule_exact_dp(dag, 2)
        greedy = schedule_greedy(dag, 2)
        assert cost <= greedy.compute_cycles(dag) + 1e-9

    def test_single_engine_serializes(self, kc_model):
        dag = _tiny_dag(kc_model)
        schedule, cost = schedule_exact_dp(dag, 1)
        assert schedule.num_rounds == dag.num_atoms
        assert cost == pytest.approx(dag.total_compute_cycles())

    def test_budget_exceeded_raises(self, kc_model):
        dag = _tiny_dag(kc_model, TileSize(2, 2, 16, 16))
        with pytest.raises(SearchBudgetExceeded):
            schedule_exact_dp(dag, 4, max_states=10)

    def test_invalid_engine_count(self, kc_model):
        dag = _tiny_dag(kc_model)
        with pytest.raises(ValueError):
            schedule_exact_dp(dag, 0)


class TestPrunedScheduler:
    def test_schedule_is_valid(self, chain_dag):
        schedule = schedule_pruned(chain_dag, 4)
        schedule.validate(chain_dag, 4)

    def test_lookahead_not_worse_than_greedy(self, chain_dag):
        pruned = schedule_pruned(chain_dag, 4, lookahead=2)
        greedy = schedule_greedy(chain_dag, 4)
        assert (
            pruned.compute_cycles(chain_dag)
            <= greedy.compute_cycles(chain_dag) * 1.05
        )

    def test_matches_exact_on_tiny_dag(self, kc_model):
        dag = _tiny_dag(kc_model)
        _, exact_cost = schedule_exact_dp(dag, 2)
        pruned = schedule_pruned(dag, 2, lookahead=2)
        # The pruned search is near-optimal on trivially small DAGs.
        assert pruned.compute_cycles(dag) <= exact_cost * 1.25

    def test_zero_lookahead_runs(self, chain_dag):
        schedule = schedule_pruned(chain_dag, 4, lookahead=0)
        schedule.validate(chain_dag, 4)

    def test_invalid_engine_count(self, chain_dag):
        with pytest.raises(ValueError):
            schedule_pruned(chain_dag, -1)


class TestGreedyScheduler:
    def test_all_atoms_scheduled_once(self, chain_dag):
        schedule = schedule_greedy(chain_dag, 3)
        schedule.validate(chain_dag, 3)
        scheduled = [a for r in schedule.rounds for a in r.atom_indices]
        assert sorted(scheduled) == list(range(chain_dag.num_atoms))

    def test_rounds_respect_engine_cap(self, chain_dag):
        schedule = schedule_greedy(chain_dag, 2)
        assert all(len(r) <= 2 for r in schedule.rounds)

    def test_more_engines_fewer_rounds(self, chain_dag):
        r2 = schedule_greedy(chain_dag, 2).num_rounds
        r8 = schedule_greedy(chain_dag, 8).num_rounds
        assert r8 <= r2


class TestCommunicationAwareDP:
    def _batched_chain_dag(self, kc_model, batch=3):
        from repro.ir import GraphBuilder
        from repro.ir.transforms import fuse_elementwise

        b = GraphBuilder(name="chainB")
        x = b.input(8, 8, 8)
        c1 = b.conv(x, 8, kernel=3, name="c1")
        c2 = b.conv(c1, 8, kernel=3, name="c2")
        b.conv(c2, 8, kernel=3, name="c3")
        g = fuse_elementwise(b.build()).graph
        return build_atomic_dag(
            g, uniform_tiling(g, TileSize(4, 4, 8, 8)), kc_model, batch=batch
        )

    def _blocking_bytes(self, dag, schedule):
        """Bytes crossing adjacent-Round dependency edges (unprefetchable)."""
        rounds = schedule.atom_round()
        return sum(
            dag.edge_bytes[(p, a)]
            for a in range(dag.num_atoms)
            for p in dag.preds[a]
            if rounds[p] == rounds[a] - 1
        )

    def test_dp_hides_more_traffic_than_greedy(self, kc_model):
        dag = self._batched_chain_dag(kc_model)
        greedy = schedule_greedy(dag, 4)
        pruned = schedule_pruned(dag, 4, lookahead=1)
        pruned.validate(dag, 4)
        assert self._blocking_bytes(dag, pruned) <= self._blocking_bytes(
            dag, greedy
        )

    def test_round_state_tracks_blocking(self, kc_model):
        from repro.scheduling import SchedulerState, fill_by_priority

        dag = self._batched_chain_dag(kc_model, batch=1)
        state = SchedulerState(dag)
        first = tuple(fill_by_priority(state, 4))
        state.commit(first)
        # Any successor of a first-Round atom now reports blocking bytes.
        succ = next(
            s for a in first for s in dag.succs[a] if s in state.ready
        )
        assert state.blocking_bytes(succ) > 0
        # An atom with no just-produced inputs reports zero.
        fresh = next(
            (a for a in state.ready if not dag.preds[a]), None
        )
        if fresh is not None:
            assert state.blocking_bytes(fresh) == 0

    def test_rounds_committed_counter(self, kc_model):
        from repro.scheduling import SchedulerState, fill_by_priority

        dag = self._batched_chain_dag(kc_model, batch=1)
        state = SchedulerState(dag)
        assert state.rounds_committed == 0
        state.commit(tuple(fill_by_priority(state, 4)))
        assert state.rounds_committed == 1
        committed = [a for a in range(dag.num_atoms) if state.scheduled[a]]
        assert all(state.round_of[a] == 0 for a in committed)
