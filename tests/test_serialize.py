"""Tests for solution serialization round trips."""

import json

import pytest

from repro.atoms.generation import SAParams
from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import vgg19
from repro.pipeline import CandidateTrace
from repro.serialize import (
    FORMAT,
    TRACE_FORMAT,
    load_search_trace,
    load_solution,
    save_search_trace,
    save_solution,
    solution_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.sim import SystemSimulator


@pytest.fixture(scope="module")
def solution():
    arch = ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )
    graph = vgg19(input_size=32, width_mult=0.25)
    opts = OptimizerOptions(
        scheduler="greedy", sa_params=SAParams(max_iterations=15)
    )
    outcome = AtomicDataflowOptimizer(graph, arch, opts).optimize()
    return graph, arch, outcome


class TestRoundTrip:
    def test_document_shape(self, solution):
        _, _, outcome = solution
        doc = solution_to_dict(outcome, "kc")
        assert doc["format"] == FORMAT
        assert doc["batch"] == 1
        assert len(doc["rounds"]) == outcome.schedule.num_rounds
        assert len(doc["placement"]) == outcome.dag.num_atoms

    def test_save_load_validates(self, solution, tmp_path):
        graph, arch, outcome = solution
        path = tmp_path / "sol.json"
        save_solution(outcome, path, dataflow="kc")
        doc = load_solution(path, graph, arch)
        assert doc.dag.num_atoms == outcome.dag.num_atoms
        assert doc.schedule.num_rounds == outcome.schedule.num_rounds
        assert doc.batch == 1

    def test_reloaded_solution_simulates_identically(self, solution, tmp_path):
        graph, arch, outcome = solution
        path = tmp_path / "sol.json"
        save_solution(outcome, path)
        doc = load_solution(path, graph, arch)
        rerun = SystemSimulator(arch, doc.dag).run(doc.schedule, doc.placement)
        assert rerun.total_cycles == outcome.result.total_cycles

    def test_wrong_workload_rejected(self, solution, tmp_path):
        _, arch, outcome = solution
        path = tmp_path / "sol.json"
        save_solution(outcome, path)
        other = vgg19(input_size=64, width_mult=0.25)
        with pytest.raises(ValueError, match="workload"):
            load_solution(path, other, arch)

    def test_wrong_format_rejected(self, solution, tmp_path):
        graph, arch, _ = solution
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a solution"):
            load_solution(path, graph, arch)

    def test_wrong_version_rejected(self, solution, tmp_path):
        graph, arch, outcome = solution
        doc = solution_to_dict(outcome, "kc")
        doc["version"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_solution(path, graph, arch)


class TestTraceRoundTrip:
    def test_trace_dict_round_trip(self, solution):
        _, _, outcome = solution
        assert outcome.traces
        for trace in outcome.traces:
            assert trace_from_dict(trace_to_dict(trace)) == trace

    def test_malformed_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"label": "sa[0]"})

    def test_solution_document_carries_search(self, solution):
        graph, arch, outcome = solution
        doc = solution_to_dict(outcome, "kc")
        assert doc["search"]["traces"]
        assert doc["search"]["search_seconds"] == outcome.search_seconds

    def test_solution_load_restores_traces(self, solution, tmp_path):
        graph, arch, outcome = solution
        path = tmp_path / "sol.json"
        save_solution(outcome, path)
        loaded = load_solution(path, graph, arch)
        assert loaded.traces == outcome.traces
        assert loaded.search_seconds == outcome.search_seconds

    def test_standalone_trace_round_trip(self, solution, tmp_path):
        graph, arch, outcome = solution
        path = tmp_path / "trace.json"
        save_search_trace(outcome, path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["format"] == TRACE_FORMAT
        assert doc["workload"] == outcome.dag.graph.name
        assert load_search_trace(path) == outcome.traces

    def test_non_trace_document_rejected(self, solution, tmp_path):
        graph, arch, outcome = solution
        path = tmp_path / "sol.json"
        save_solution(outcome, path)
        with pytest.raises(ValueError):
            load_search_trace(path)
