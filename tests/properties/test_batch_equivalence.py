"""Golden-equivalence properties of the vectorized cost-kernel core.

The refactor's contract is *bit-identical* results: the batched
structure-of-arrays kernel must reproduce the scalar
:meth:`EngineCostModel.cost` field for field on every op kind, tile
region, and dataflow, and the SA loop's incremental delta-cost
bookkeeping must always equal a from-scratch re-sum.

All randomized dimensions stay far below 2**53, so ``ceil`` of a float
quotient is exact in both the scalar (``math.ceil(a / b)``) and the
vectorized (``np.ceil(a / b)``) paths — the regime the kernel documents.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atoms.generation import _FIT_SWEEPS, _UTIL_PENALTY, AtomGenerator
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.engine.batch import region_bounds
from repro.ir import Conv2D, GraphBuilder, Region, TensorShape
from repro.ir.ops import Add, FullyConnected, GlobalPool, Pool, ReLU

small = st.integers(min_value=1, max_value=20)
chans = st.integers(min_value=1, max_value=48)
dataflows = st.sampled_from(["kc", "yx", "kcw"])


@st.composite
def conv_cases(draw):
    groups = draw(st.sampled_from([1, 2]))
    cin = groups * draw(st.integers(1, 24))
    cout = groups * draw(st.integers(1, 24))
    # Spatial extents start at 4 so any kernel<=3 / stride<=2 combination
    # keeps the output dimensions positive.
    shape = TensorShape(draw(st.integers(4, 20)), draw(st.integers(4, 20)), cin)
    k = draw(st.integers(1, 3))
    op = Conv2D(
        out_channels=cout,
        kernel=(k, draw(st.integers(1, 3))),
        stride=(draw(st.integers(1, 2)), draw(st.integers(1, 2))),
        padding=(draw(st.integers(0, 1)), draw(st.integers(0, 1))),
        groups=groups,
    )
    return op, (shape,)


@st.composite
def vector_cases(draw):
    shape = TensorShape(draw(st.integers(3, 20)), draw(st.integers(3, 20)), draw(chans))
    kind = draw(st.sampled_from(["pool", "gpool", "add", "relu", "fc"]))
    if kind == "pool":
        return Pool(kernel=(draw(st.integers(1, 3)),) * 2), (shape,)
    if kind == "gpool":
        return GlobalPool(), (shape,)
    if kind == "add":
        arity = draw(st.integers(2, 3))
        return Add(arity=arity), (shape,) * arity
    if kind == "relu":
        return ReLU(), (shape,)
    return FullyConnected(out_features=draw(chans)), (shape,)


@st.composite
def regions_of(draw, shape: TensorShape):
    def span(extent):
        a = draw(st.integers(0, extent - 1))
        b = draw(st.integers(0, extent - 1))
        return (min(a, b), max(a, b))

    return Region(span(shape.height), span(shape.width), span(shape.channels))


@st.composite
def op_with_regions(draw):
    op, in_shapes = draw(st.one_of(conv_cases(), vector_cases()))
    out = op.infer_shape(in_shapes)
    regions = draw(st.lists(regions_of(out), min_size=1, max_size=6))
    return op, in_shapes, regions


class TestScalarBatchEquivalence:
    @given(op_with_regions(), dataflows)
    @settings(max_examples=300, deadline=None)
    def test_batched_costs_match_scalar_field_for_field(self, case, df):
        op, in_shapes, regions = case
        cm = EngineCostModel(EngineConfig(), get_dataflow(df))
        arrays = cm.kernel.price_regions(op, in_shapes, region_bounds(regions))
        for i, region in enumerate(regions):
            scalar = cm.cost(op, in_shapes, region)
            batched = arrays.cost_at(i)
            assert batched == scalar

    @given(op_with_regions(), dataflows)
    @settings(max_examples=100, deadline=None)
    def test_layer_cost_consistent_with_batch(self, case, df):
        op, in_shapes, regions = case
        cm = EngineCostModel(EngineConfig(), get_dataflow(df))
        out = op.infer_shape(in_shapes)
        full = Region(
            (0, out.height - 1), (0, out.width - 1), (0, out.channels - 1)
        )
        arrays = cm.kernel.price_regions(op, in_shapes, region_bounds([full]))
        assert arrays.cost_at(0) == cm.layer_cost(op, in_shapes)

    @given(op_with_regions(), dataflows, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_prototype_engine_equivalence(self, case, df, wide):
        op, in_shapes, regions = case
        engine = EngineConfig(pe_rows=32, pe_cols=32) if wide else EngineConfig(
            pe_rows=8, pe_cols=8
        )
        cm = EngineCostModel(engine, get_dataflow(df))
        arrays = cm.kernel.price_regions(op, in_shapes, region_bounds(regions))
        for i, region in enumerate(regions):
            assert arrays.cost_at(i) == cm.cost(op, in_shapes, region)


def _make_generator(df: str, seed: int) -> AtomGenerator:
    b = GraphBuilder(name="sa_prop")
    x = b.input(14, 14, 8)
    c1 = b.conv(x, 16, kernel=3, name="c1")
    c2 = b.conv(c1, 16, kernel=3, stride=2, name="c2")
    b.conv(c2, 24, kernel=1, name="c3")
    return AtomGenerator(
        b.build(),
        EngineCostModel(EngineConfig(), get_dataflow(df)),
        rng=np.random.default_rng(seed),
    )


def _reference_fit(gen, node, start, target):
    """The pre-vectorization scalar sweep: ladder order, strict-< accept."""
    ladders = gen._ladders[node.node_id]
    cycles0, util0 = gen.atom_cost(node, start)
    best = start
    best_gap = abs(cycles0 - target) + (_UTIL_PENALTY * target) * (1.0 - util0)
    for _ in range(_FIT_SWEEPS):
        improved = False
        for k in range(4):
            for v in ladders[k]:
                cand = best[:k] + (v,) + best[k + 1 :]
                cycles, util = gen.atom_cost(node, cand)
                gap = abs(cycles - target) + (_UTIL_PENALTY * target) * (
                    1.0 - util
                )
                if gap < best_gap:
                    best, best_gap = cand, gap
                    improved = True
        if not improved:
            break
    return best


class TestSADeltaCostEquivalence:
    @given(
        st.sampled_from(["kc", "yx"]),
        st.integers(0, 2**32 - 1),
        st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_fit_matches_scalar_sweep(self, df, seed, target):
        gen = _make_generator(df, seed)
        ref = _make_generator(df, seed)
        for node in gen._compute_nodes:
            start = gen._random_coeffs(node)
            assert gen._fit_layer_to_state(node, start, target) == _reference_fit(
                ref, node, start, target
            )

    @given(
        st.sampled_from(["kc", "yx"]),
        st.integers(0, 2**32 - 1),
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_delta_bookkeeping_matches_full_resum(self, df, seed, states):
        """Incremental cycle/count updates == recomputing from scratch.

        This is the invariant the SA loop relies on: refitting only the
        changed layers keeps the maintained arrays (and hence the energy,
        always evaluated over the full arrays) equal to a full re-sum.
        """
        gen = _make_generator(df, seed)
        assignment = {
            n.node_id: gen._random_coeffs(n) for n in gen._compute_nodes
        }
        cycles = gen._cycles_of(assignment)
        counts = gen._counts_of(assignment)
        for state in states:
            for i, node in enumerate(gen._compute_nodes):
                fitted = gen._fit_layer_to_state(
                    node, assignment[node.node_id], state
                )
                if fitted == assignment[node.node_id]:
                    continue
                assignment[node.node_id] = fitted
                cycles[i] = gen.atom_cycles(node, fitted)
                counts[i] = gen._count_of(node, fitted)
            assert cycles == gen._cycles_of(assignment)
            assert counts == gen._counts_of(assignment)
            assert gen._energy(cycles, counts) == gen._energy(
                gen._cycles_of(assignment), gen._counts_of(assignment)
            )
