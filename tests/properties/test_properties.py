"""Property-based tests (hypothesis) on core invariants.

Covers: tile-grid coverage/disjointness, dependency-cover correctness, mesh
metric properties, schedule validity under arbitrary engine counts, buffer
conservation, and cost-model monotonicity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atoms import TileSize, build_atomic_dag, grid_for, uniform_tiling
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import Conv2D, GraphBuilder, Region, TensorShape
from repro.ir.transforms import fuse_elementwise
from repro.memory import EngineBuffer
from repro.noc import Mesh2D
from repro.scheduling import schedule_greedy

dims = st.integers(min_value=1, max_value=24)
tile_dims = st.integers(min_value=1, max_value=30)


@st.composite
def shapes_and_tiles(draw):
    shape = TensorShape(draw(dims), draw(dims), draw(dims))
    tile = TileSize(draw(tile_dims), draw(tile_dims), draw(tile_dims), draw(tile_dims))
    return shape, tile


class TestTileGridProperties:
    @given(shapes_and_tiles())
    @settings(max_examples=200)
    def test_grid_covers_exactly(self, st_pair):
        shape, tile = st_pair
        grid = grid_for(shape, tile)
        total = sum(r.num_elements for r in grid.regions())
        assert total == shape.num_elements

    # O(n^2) pairwise check: a 24^3 all-ones grid is ~1.4M intersect
    # calls, which sits right at hypothesis' 200ms default deadline on a
    # loaded CI box — the deadline flakes, the property does not.
    @given(shapes_and_tiles())
    @settings(max_examples=100, deadline=None)
    def test_tiles_disjoint(self, st_pair):
        shape, tile = st_pair
        grid = grid_for(shape, tile)
        regions = grid.regions()
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                assert not a.intersects(b)

    @given(
        shapes_and_tiles(),
        st.tuples(dims, dims, dims, dims, dims, dims),
    )
    @settings(max_examples=200)
    def test_covering_equals_brute_force(self, st_pair, bounds):
        shape, tile = st_pair
        grid = grid_for(shape, tile)
        h1, h2, w1, w2, c1, c2 = bounds
        h = tuple(sorted((h1 % shape.height, h2 % shape.height)))
        w = tuple(sorted((w1 % shape.width, w2 % shape.width)))
        c = tuple(sorted((c1 % shape.channels, c2 % shape.channels)))
        query = Region(h, w, c)
        brute = {
            i for i in range(grid.num_tiles) if grid.region(i).intersects(query)
        }
        assert set(grid.tiles_covering(query)) == brute


class TestMeshProperties:
    @given(st.integers(1, 6), st.integers(1, 6), st.data())
    @settings(max_examples=100)
    def test_metric_axioms(self, rows, cols, data):
        m = Mesh2D(rows, cols)
        n = m.num_engines
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert m.hop_distance(a, a) == 0
        assert m.hop_distance(a, b) == m.hop_distance(b, a)
        assert m.hop_distance(a, c) <= m.hop_distance(a, b) + m.hop_distance(b, c)
        assert (m.hop_distance(a, b) == 0) == (a == b)

    @given(st.integers(1, 5), st.integers(1, 5), st.data())
    @settings(max_examples=100)
    def test_route_length_is_distance(self, rows, cols, data):
        m = Mesh2D(rows, cols)
        a = data.draw(st.integers(0, m.num_engines - 1))
        b = data.draw(st.integers(0, m.num_engines - 1))
        assert len(m.route(a, b)) == m.hop_distance(a, b)


class TestScheduleProperties:
    @given(
        st.integers(1, 12),
        st.integers(2, 10),
        st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_greedy_schedule_always_valid(self, engines, tile_h, tile_c):
        b = GraphBuilder(name="prop")
        x = b.input(12, 12, 8)
        c1 = b.conv(x, 8, kernel=3, name="c1")
        c2 = b.conv(c1, 8, kernel=3, name="c2")
        s = b.conv(x, 8, kernel=1, name="proj")
        b.add(c2, s, name="join")
        g = fuse_elementwise(b.build()).graph
        cm = EngineCostModel(
            EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("kc")
        )
        tiling = uniform_tiling(g, TileSize(tile_h, 12, 8, tile_c))
        dag = build_atomic_dag(g, tiling, cm)
        schedule = schedule_greedy(dag, engines)
        schedule.validate(dag, engines)  # raises on any violation

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_batched_dag_valid_and_scaled(self, batch):
        b = GraphBuilder(name="prop2")
        x = b.input(8, 8, 8)
        c1 = b.conv(x, 8, kernel=3, name="c1")
        b.conv(c1, 8, kernel=3, name="c2")
        g = fuse_elementwise(b.build()).graph
        cm = EngineCostModel(
            EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("kc")
        )
        tiling = uniform_tiling(g, TileSize(4, 4, 8, 8))
        d1 = build_atomic_dag(g, tiling, cm, batch=1)
        dn = build_atomic_dag(g, tiling, cm, batch=batch)
        dn.validate()
        assert dn.num_atoms == batch * d1.num_atoms


class TestBufferProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(1, 200)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_store_release_conserves_bytes(self, ops):
        buf = EngineBuffer(capacity_bytes=2000)
        shadow: dict[int, int] = {}
        for key, size in ops:
            if buf.contains(key):
                freed = buf.release(key)
                assert freed == shadow.pop(key)
            else:
                try:
                    buf.store(key, size)
                    shadow[key] = size
                except Exception:
                    pass
            assert buf.used_bytes == sum(shadow.values())
            assert 0 <= buf.used_bytes <= buf.capacity_bytes


class TestCostModelProperties:
    @given(
        st.integers(1, 16),
        st.integers(1, 16),
        st.integers(1, 64),
    )
    @settings(max_examples=100)
    def test_bigger_region_never_cheaper(self, h, w, co):
        cm = EngineCostModel(
            EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("kc")
        )
        op = Conv2D(64, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(16, 16, 16),)
        small = cm.cost(op, x, Region((0, h - 1), (0, w - 1), (0, co - 1)))
        full = cm.cost(op, x, Region((0, 15), (0, 15), (0, 63)))
        assert small.cycles <= full.cycles
        assert small.macs <= full.macs

    @given(st.integers(1, 16), st.integers(1, 64))
    @settings(max_examples=100)
    def test_utilization_bounded(self, hw, co):
        cm = EngineCostModel(
            EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("yx")
        )
        op = Conv2D(64, kernel=(3, 3), padding=(1, 1))
        x = (TensorShape(16, 16, 16),)
        cost = cm.cost(op, x, Region((0, hw - 1), (0, hw - 1), (0, co - 1)))
        assert 0.0 < cost.pe_utilization <= 1.0


class TestFunctionalEquivalenceProperties:
    @given(
        st.integers(6, 14),   # input size
        st.integers(1, 6),    # tile h
        st.integers(1, 6),    # tile w
        st.integers(1, 8),    # tile co
        st.sampled_from([1, 2]),   # stride
        st.sampled_from([1, 3]),   # kernel
    )
    @settings(max_examples=25, deadline=None)
    def test_atomwise_equals_direct_on_random_tilings(
        self, size, th, tw, tc, stride, kernel
    ):
        import numpy as np

        from repro.exec import execute_atomwise, execute_graph, random_weights
        from repro.scheduling import schedule_greedy

        b = GraphBuilder(name="prop_exec")
        x = b.input(size, size, 4)
        c1 = b.conv(x, 8, kernel=kernel, stride=stride, name="c1")
        c2 = b.conv(c1, 8, kernel=3, name="c2")
        s = b.conv(c1, 8, kernel=1, name="proj")
        b.add(c2, s, name="join")
        g = b.build()

        rng = np.random.default_rng(3)
        weights = random_weights(g, rng)
        feeds = {
            g.sources()[0]: rng.standard_normal((size, size, 4))
        }
        direct = execute_graph(g, feeds, weights)

        cm = EngineCostModel(
            EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("kc")
        )
        tiling = uniform_tiling(g, TileSize(th, tw, 8, tc))
        dag = build_atomic_dag(g, tiling, cm)
        schedule = schedule_greedy(dag, 4)
        atomwise = execute_atomwise(dag, feeds, weights, schedule=schedule)
        for layer, expected in direct.items():
            np.testing.assert_allclose(
                atomwise[layer], expected, rtol=1e-9, atol=1e-9
            )
