"""Property-based tests tying the schedulers to the AD2xx validators.

Invariants: every schedule produced by the three schedulers
(exact DP, priority-pruned, greedy) passes `check_schedule` with zero
findings on randomly-shaped graphs; conversely, pulling any atom into
the Round of one of its predecessors always trips AD203.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import check_schedule
from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import GraphBuilder
from repro.scheduling import (
    Round,
    Schedule,
    SearchBudgetExceeded,
    default_round_cost,
    schedule_exact_dp,
    schedule_greedy,
    schedule_pruned,
)

COST_MODEL = EngineCostModel(
    EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("kc")
)


@st.composite
def small_dags(draw):
    """Random small DAGs: chain or residual shape, random tiling/batch."""
    tile_h = draw(st.sampled_from([4, 8]))
    tile_c = draw(st.sampled_from([4, 8]))
    batch = draw(st.integers(1, 2))
    residual = draw(st.booleans())

    b = GraphBuilder(name="prop_validator")
    x = b.input(8, 8, 4)
    c1 = b.conv(x, 8, kernel=3, name="c1")
    c2 = b.conv(c1, 8, kernel=3, name="c2")
    if residual:
        s = b.conv(x, 8, kernel=1, name="proj")
        b.add(c2, s, name="join")
    g = b.build()
    tiling = uniform_tiling(g, TileSize(tile_h, 8, 8, tile_c))
    return build_atomic_dag(g, tiling, COST_MODEL, batch=batch)


class TestSchedulersSatisfyValidator:
    @given(small_dags(), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_greedy_passes(self, dag, engines):
        report = check_schedule(dag, schedule_greedy(dag, engines), engines)
        assert report.ok and not report.diagnostics

    @given(small_dags(), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_pruned_passes(self, dag, engines):
        schedule = schedule_pruned(dag, engines)
        report = check_schedule(dag, schedule, engines)
        assert report.ok and not report.diagnostics

    @given(small_dags(), st.integers(1, 3))
    @settings(max_examples=8, deadline=None)
    def test_exact_dp_passes_including_cost_crosscheck(self, dag, engines):
        try:
            schedule, total = schedule_exact_dp(
                dag, engines, max_states=20_000
            )
        except SearchBudgetExceeded:
            assume(False)
        # AD205: the reported optimum must match recomputation with the
        # same round_cost_fn the DP minimized.
        report = check_schedule(
            dag,
            schedule,
            engines,
            round_cost_fn=default_round_cost,
            expected_cost=total,
        )
        assert report.ok and not report.diagnostics


class TestMutatedSchedulesFailValidator:
    @given(small_dags(), st.integers(2, 6), st.data())
    @settings(max_examples=20, deadline=None)
    def test_hoisting_a_dependent_atom_trips_ad203(
        self, dag, engines, data
    ):
        schedule = schedule_greedy(dag, engines)
        atom_round = schedule.atom_round()
        movable = [
            (a, p)
            for a in range(dag.num_atoms)
            for p in dag.preds[a]
        ]
        assume(movable)
        a, p = data.draw(st.sampled_from(movable))

        # Move atom `a` into its predecessor's Round: a dependency can
        # then no longer resolve strictly earlier.
        target = atom_round[p]
        rounds = []
        for rnd in schedule.rounds:
            atoms = tuple(x for x in rnd.atom_indices if x != a)
            if rnd.index == target:
                atoms += (a,)
            if atoms:
                rounds.append(Round(len(rounds), atoms))
        mutated = Schedule(rounds=rounds)

        report = check_schedule(dag, mutated, engines)
        assert not report.ok
        assert "AD203" in report.fired_rule_ids()
