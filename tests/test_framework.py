"""Tests for the end-to-end optimization framework."""

import pytest

from repro import AtomicDataflowOptimizer, OptimizerOptions, optimize
from repro.atoms.generation import SAParams
from repro.config import ArchConfig, EngineConfig
from repro.models import resnet50


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2,
        mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


@pytest.fixture(scope="module")
def net():
    return resnet50(input_size=64)


FAST_SA = SAParams(max_iterations=15)


class TestOptimizerOptions:
    def test_invalid_choices_rejected(self):
        with pytest.raises(ValueError):
            OptimizerOptions(atom_generation="magic")
        with pytest.raises(ValueError):
            OptimizerOptions(scheduler="quantum")
        with pytest.raises(ValueError):
            OptimizerOptions(mapping="random")
        with pytest.raises(ValueError):
            OptimizerOptions(batch=0)


class TestOptimize:
    def test_outcome_is_consistent(self, net, arch):
        opt = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", sa_params=FAST_SA),
        )
        outcome = opt.optimize()
        outcome.schedule.validate(outcome.dag, arch.num_engines)
        assert set(outcome.placement) == set(range(outcome.dag.num_atoms))
        assert outcome.result.strategy == "AD"

    def test_deterministic_given_seed(self, net, arch):
        def run():
            return AtomicDataflowOptimizer(
                net, arch,
                OptimizerOptions(scheduler="greedy", seed=11, sa_params=FAST_SA),
            ).optimize().result.total_cycles

        assert run() == run()

    def test_never_worse_than_even_tiling(self, net, arch):
        # The even-split candidate is always evaluated, so the SA arm
        # cannot make the framework regress below it.
        from repro.atoms.generation import layer_sequential_tiling

        opt = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", sa_params=FAST_SA),
        )
        outcome = opt.optimize()
        even = opt._evaluate_tiling(
            layer_sequential_tiling(opt.graph, arch.num_engines), None, "AD"
        )
        assert outcome.result.total_cycles <= even.result.total_cycles

    def test_batch_option(self, net, arch):
        opt = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", batch=2, sa_params=FAST_SA),
        )
        outcome = opt.optimize()
        assert outcome.result.batch == 2
        assert outcome.dag.batch == 2

    def test_yx_dataflow_runs(self, net, arch):
        outcome = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", dataflow="yx", sa_params=FAST_SA),
        ).optimize()
        assert outcome.result.total_cycles > 0

    def test_convenience_wrapper(self, net, arch):
        outcome = optimize(net, arch, scheduler="greedy", sa_params=FAST_SA)
        assert outcome.result.total_cycles > 0


class TestAblationArms:
    def test_even_generation_arm(self, net, arch):
        outcome = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(atom_generation="even", scheduler="greedy"),
        ).optimize()
        assert outcome.tiling_energy is None

    def test_zigzag_mapping_arm_not_better(self, net, arch):
        base = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", seed=5, sa_params=FAST_SA),
        ).optimize()
        zz = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(
                scheduler="greedy", mapping="zigzag", seed=5, sa_params=FAST_SA
            ),
        ).optimize()
        assert base.result.total_cycles <= zz.result.total_cycles * 1.02

    def test_dp_not_worse_than_greedy(self, net, arch):
        greedy = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", seed=5, sa_params=FAST_SA),
        ).optimize()
        dp = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="dp", seed=5, sa_params=FAST_SA),
        ).optimize()
        assert dp.result.total_cycles <= greedy.result.total_cycles * 1.05


class TestValidateOption:
    """`validate=True` runs the repro.analysis checkers on every artifact."""

    def test_validated_run_matches_plain_run(self, net, arch):
        opts = dict(scheduler="greedy", seed=3, sa_params=FAST_SA)
        plain = AtomicDataflowOptimizer(
            net, arch, OptimizerOptions(**opts)
        ).optimize()
        checked = AtomicDataflowOptimizer(
            net, arch, OptimizerOptions(validate=True, **opts)
        ).optimize()
        assert checked.result.total_cycles == plain.result.total_cycles

    def test_validated_exact_scheduler_cost_crosscheck(self, arch):
        from repro.ir import GraphBuilder

        b = GraphBuilder(name="tiny_exact")
        x = b.input(16, 16, 8)
        c1 = b.conv(x, 8, kernel=3, name="c1")
        b.conv(c1, 8, kernel=1, name="c2")
        outcome = AtomicDataflowOptimizer(
            b.build(), arch,
            OptimizerOptions(
                scheduler="exact", validate=True, sa_params=FAST_SA
            ),
        ).optimize()
        assert outcome.result.total_cycles > 0

    def test_outcome_revalidates_cleanly(self, net, arch):
        from repro.analysis import validate_outcome

        outcome = AtomicDataflowOptimizer(
            net, arch,
            OptimizerOptions(scheduler="greedy", seed=3, sa_params=FAST_SA),
        ).optimize()
        report = validate_outcome(outcome, arch)
        assert report.ok
