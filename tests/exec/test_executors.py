"""Functional-correctness tests: atom-wise execution == direct execution.

These are the strongest partition-correctness checks in the suite: any
error in tile grids, receptive-field algebra, concat channel offsets, or
atomic-DAG edge inference shows up as NaN reads or numeric mismatches.
"""

import numpy as np
import pytest

from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.exec import (
    AtomExecutionError,
    execute_atomwise,
    execute_graph,
    random_weights,
)
from repro.ir import GraphBuilder
from repro.ir.transforms import fuse_elementwise
from repro.scheduling import schedule_greedy

RNG = np.random.default_rng(42)


def _feeds(graph, rng):
    out = {}
    for i in graph.sources():
        s = graph.node(i).output_shape
        out[i] = rng.standard_normal((s.height, s.width, s.channels))
    return out


def _check_graph(graph, tile: TileSize, kc_model, batch_schedule=True):
    """Direct vs atom-wise execution must agree everywhere."""
    rng = np.random.default_rng(7)
    weights = random_weights(graph, rng)
    feeds = _feeds(graph, rng)
    direct = execute_graph(graph, feeds, weights)

    tiling = uniform_tiling(graph, tile)
    dag = build_atomic_dag(graph, tiling, kc_model)
    schedule = schedule_greedy(dag, 4) if batch_schedule else None
    atomwise = execute_atomwise(dag, feeds, weights, schedule=schedule)
    for layer, expected in direct.items():
        got = atomwise[layer]
        np.testing.assert_allclose(
            got, expected, rtol=1e-9, atol=1e-9,
            err_msg=f"layer {graph.node(layer).name} mismatch",
        )


class TestAtomwiseMatchesDirect:
    def test_conv_chain_with_halos(self, kc_model):
        b = GraphBuilder(name="halo")
        x = b.input(12, 12, 4)
        c = b.conv(x, 8, kernel=3, name="c1")
        b.conv(c, 8, kernel=3, name="c2")
        _check_graph(b.build(), TileSize(5, 5, 4, 4), kc_model)

    def test_strided_conv(self, kc_model):
        b = GraphBuilder(name="stride")
        x = b.input(12, 12, 4)
        c = b.conv(x, 8, kernel=3, stride=2, name="c1")
        b.conv(c, 8, kernel=3, name="c2")
        _check_graph(b.build(), TileSize(3, 3, 8, 4), kc_model)

    def test_valid_padding_conv(self, kc_model):
        b = GraphBuilder(name="valid")
        x = b.input(10, 10, 4)
        c = b.conv(x, 8, kernel=3, padding="valid", name="c1")
        b.conv(c, 4, kernel=1, name="c2")
        _check_graph(b.build(), TileSize(4, 4, 8, 4), kc_model)

    def test_rectangular_kernels(self, kc_model):
        b = GraphBuilder(name="rect")
        x = b.input(10, 10, 4)
        c = b.conv(x, 8, kernel=(1, 7), padding=(0, 3), name="c1")
        b.conv(c, 8, kernel=(7, 1), padding=(3, 0), name="c2")
        _check_graph(b.build(), TileSize(4, 4, 4, 4), kc_model)

    def test_residual_add(self, kc_model, residual_graph):
        g = fuse_elementwise(residual_graph).graph
        _check_graph(g, TileSize(6, 6, 8, 4), kc_model)

    def test_concat_channel_offsets(self, kc_model, branching_graph):
        g = fuse_elementwise(branching_graph).graph
        _check_graph(g, TileSize(4, 4, 8, 4), kc_model)

    def test_pooling(self, kc_model):
        b = GraphBuilder(name="pool")
        x = b.input(12, 12, 4)
        c = b.conv(x, 8, kernel=3, name="c1")
        p = b.max_pool(c, kernel=2, name="p1")
        a = b.avg_pool(p, kernel=3, stride=1, padding=1, name="p2")
        b.conv(a, 4, kernel=1, name="c2")
        _check_graph(b.build(), TileSize(3, 3, 8, 4), kc_model)

    def test_depthwise_conv(self, kc_model):
        b = GraphBuilder(name="dw")
        x = b.input(10, 10, 8)
        d = b.depthwise_conv(x, kernel=3, name="dw1")
        b.conv(d, 8, kernel=1, name="pw1")
        _check_graph(b.build(), TileSize(4, 4, 8, 4), kc_model)

    def test_se_block_with_scale(self, kc_model):
        b = GraphBuilder(name="se")
        x = b.input(8, 8, 8)
        c = b.conv(x, 8, kernel=3, name="c1")
        s = b.global_avg_pool(c, name="sq")
        s = b.fc(s, 8, name="exc")
        s = b.sigmoid(s, name="gate")
        y = b.scale(c, s, name="scale")
        b.conv(y, 4, kernel=1, name="c2")
        g = fuse_elementwise(b.build()).graph
        _check_graph(g, TileSize(4, 4, 8, 4), kc_model)

    def test_fc_head(self, kc_model):
        b = GraphBuilder(name="fc")
        x = b.input(6, 6, 4)
        c = b.conv(x, 8, kernel=3, name="c1")
        g1 = b.global_avg_pool(c, name="gap")
        b.fc(g1, 10, name="fc")
        _check_graph(b.build(), TileSize(3, 3, 4, 4), kc_model)

    def test_unfused_relu_and_bn(self, kc_model):
        b = GraphBuilder(name="unfused", fold_batchnorm=False)
        x = b.input(8, 8, 4)
        b.conv_bn_relu(x, 8, kernel=3, name="blk")
        _check_graph(b.build(), TileSize(4, 4, 4, 4), kc_model)

    def test_whole_layer_tiles(self, kc_model, residual_graph):
        # Degenerate tiling (one atom per layer) must also agree.
        g = fuse_elementwise(residual_graph).graph
        _check_graph(g, TileSize(100, 100, 100, 100), kc_model)


class TestErrorDetection:
    def test_missing_edge_detected(self, kc_model):
        b = GraphBuilder(name="sab")
        x = b.input(8, 8, 4)
        c1 = b.conv(x, 4, kernel=3, name="c1")
        b.conv(c1, 4, kernel=3, name="c2")
        g = b.build()
        dag = build_atomic_dag(g, uniform_tiling(g, TileSize(4, 4, 4, 4)), kc_model)
        # Sabotage: drop every dependency so c2 runs before c1 materializes.
        dag.preds = [() for _ in range(dag.num_atoms)]
        dag.succs = [() for _ in range(dag.num_atoms)]
        rng = np.random.default_rng(0)
        weights = random_weights(g, rng)
        feeds = _feeds(g, rng)
        c2 = g.by_name("c2").node_id
        c2_first = sorted(
            range(dag.num_atoms),
            key=lambda a: 0 if dag.atoms[a].layer == c2 else 1,
        )
        from repro.scheduling.rounds import Round, Schedule

        sabotaged = Schedule(
            rounds=[
                Round(index=t, atom_indices=(a,))
                for t, a in enumerate(c2_first)
            ]
        )
        with pytest.raises(AtomExecutionError, match="unmaterialized"):
            execute_atomwise(dag, feeds, weights, schedule=sabotaged)

    def test_missing_feed_rejected(self, kc_model, chain_dag):
        with pytest.raises(ValueError, match="feed"):
            execute_atomwise(chain_dag, {}, random_weights(
                chain_dag.graph, np.random.default_rng(0)
            ))


class TestReferenceExecutor:
    def test_shape_assertions_hold_on_models(self):
        # Shape inference of the IR and the numpy executor agree on a
        # small but representative model.
        from repro.models import vgg19

        g = vgg19(input_size=32, width_mult=0.25)
        rng = np.random.default_rng(1)
        values = execute_graph(g, _feeds(g, rng), random_weights(g, rng))
        assert len(values) == len(g)

    def test_feed_shape_mismatch_rejected(self, chain_graph):
        rng = np.random.default_rng(0)
        weights = random_weights(chain_graph, rng)
        bad = {chain_graph.sources()[0]: np.zeros((2, 2, 2))}
        with pytest.raises(ValueError, match="shape"):
            execute_graph(chain_graph, bad, weights)
