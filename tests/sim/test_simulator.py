"""Tests for the system-level simulator."""

import pytest

from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.config import ArchConfig, EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import GraphBuilder
from repro.ir.transforms import fuse_elementwise
from repro.mapping import optimized_placement, zigzag_placement
from repro.noc import Mesh2D
from repro.scheduling import schedule_greedy
from repro.sim import SystemSimulator


@pytest.fixture
def setup(small_arch, kc_model, chain_graph):
    g = fuse_elementwise(chain_graph).graph
    tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
    dag = build_atomic_dag(g, tiling, kc_model)
    schedule = schedule_greedy(dag, small_arch.num_engines)
    mesh = Mesh2D(small_arch.mesh_rows, small_arch.mesh_cols)
    placement = optimized_placement(dag, mesh, schedule)
    return small_arch, dag, schedule, placement


class TestRunBasics:
    def test_result_fields_consistent(self, setup):
        arch, dag, schedule, placement = setup
        result = SystemSimulator(arch, dag).run(schedule, placement)
        assert result.total_cycles >= result.compute_cycles
        assert result.num_rounds == schedule.num_rounds
        assert 0 <= result.pe_utilization <= 1
        assert 0 <= result.onchip_reuse_ratio <= 1
        assert result.batch == 1
        assert result.workload == dag.graph.name

    def test_compute_cycles_match_schedule(self, setup):
        arch, dag, schedule, placement = setup
        result = SystemSimulator(arch, dag).run(schedule, placement)
        assert result.compute_cycles == schedule.compute_cycles(dag)

    def test_energy_components_positive(self, setup):
        arch, dag, schedule, placement = setup
        result = SystemSimulator(arch, dag).run(schedule, placement)
        e = result.energy
        assert e.mac_pj > 0 and e.sram_pj > 0
        assert e.dram_pj > 0  # at least weights and the input come from HBM
        assert e.static_pj > 0
        assert e.total_pj == pytest.approx(
            e.mac_pj + e.sram_pj + e.noc_pj + e.dram_pj + e.static_pj
        )

    def test_dram_reads_cover_input_and_weights(self, setup):
        arch, dag, schedule, placement = setup
        result = SystemSimulator(arch, dag).run(schedule, placement)
        min_reads = sum(dag.dram_input_bytes)
        assert result.dram_bytes_read >= min_reads

    def test_throughput_latency_relation(self, setup):
        arch, dag, schedule, placement = setup
        result = SystemSimulator(arch, dag).run(schedule, placement)
        assert result.throughput_fps == pytest.approx(
            1.0 / (result.latency_ms * 1e-3)
        )

    def test_invalid_placement_rejected(self, setup):
        arch, dag, schedule, _ = setup
        with pytest.raises(ValueError, match="placement"):
            SystemSimulator(arch, dag).run(schedule, {})

    def test_schedule_validated(self, setup):
        arch, dag, schedule, placement = setup
        schedule.rounds = schedule.rounds[:-1]
        with pytest.raises(ValueError):
            SystemSimulator(arch, dag).run(schedule, placement)


class TestLocalityEffects:
    def test_optimized_mapping_moves_fewer_bytes(self, setup):
        arch, dag, schedule, opt_placement = setup
        mesh = Mesh2D(arch.mesh_rows, arch.mesh_cols)
        zz = zigzag_placement(dag, mesh, schedule)
        r_opt = SystemSimulator(arch, dag).run(schedule, opt_placement)
        r_zz = SystemSimulator(arch, dag).run(schedule, zz)
        assert r_opt.noc_bytes_hops <= r_zz.noc_bytes_hops

    def test_tiny_buffer_forces_spills(self, chain_graph):
        # A buffer that cannot hold a single tile output for reuse must
        # round-trip feature maps through DRAM.
        tiny = ArchConfig(
            mesh_rows=2,
            mesh_cols=2,
            engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=256),
        )
        roomy = ArchConfig(
            mesh_rows=2,
            mesh_cols=2,
            engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
        )
        g = fuse_elementwise(chain_graph).graph
        results = {}
        for name, arch in (("tiny", tiny), ("roomy", roomy)):
            cm = EngineCostModel(arch.engine, get_dataflow("kc"))
            tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
            dag = build_atomic_dag(g, tiling, cm)
            schedule = schedule_greedy(dag, arch.num_engines)
            mesh = Mesh2D(arch.mesh_rows, arch.mesh_cols)
            placement = optimized_placement(dag, mesh, schedule)
            results[name] = SystemSimulator(arch, dag).run(schedule, placement)
        assert (
            results["tiny"].onchip_reuse_ratio
            < results["roomy"].onchip_reuse_ratio
        )
        assert results["tiny"].dram_bytes_read > results["roomy"].dram_bytes_read


class TestBatchRuns:
    def test_batch_scales_traffic(self, small_arch, kc_model, chain_graph):
        g = fuse_elementwise(chain_graph).graph
        tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
        results = []
        for batch in (1, 2):
            dag = build_atomic_dag(g, tiling, kc_model, batch=batch)
            schedule = schedule_greedy(dag, small_arch.num_engines)
            mesh = Mesh2D(small_arch.mesh_rows, small_arch.mesh_cols)
            placement = optimized_placement(dag, mesh, schedule)
            results.append(
                SystemSimulator(small_arch, dag).run(schedule, placement)
            )
        r1, r2 = results
        assert r2.total_cycles > r1.total_cycles
        assert r2.energy.mac_pj == pytest.approx(2 * r1.energy.mac_pj)


class TestTracedRun:
    def test_trace_covers_all_rounds(self, setup):
        arch, dag, schedule, placement = setup
        result, traces = SystemSimulator(arch, dag).run_traced(
            schedule, placement
        )
        assert len(traces) == schedule.num_rounds
        assert [t.index for t in traces] == [r.index for r in schedule.rounds]

    def test_trace_sums_to_total(self, setup):
        arch, dag, schedule, placement = setup
        result, traces = SystemSimulator(arch, dag).run_traced(
            schedule, placement
        )
        assert sum(t.round_cycles for t in traces) == result.total_cycles
        assert sum(t.compute_cycles for t in traces) == result.compute_cycles
        assert (
            sum(t.blocking_noc_cycles for t in traces)
            == result.noc_blocking_cycles
        )

    def test_traced_matches_untraced(self, setup):
        arch, dag, schedule, placement = setup
        plain = SystemSimulator(arch, dag).run(schedule, placement)
        traced, _ = SystemSimulator(arch, dag).run_traced(schedule, placement)
        assert plain.total_cycles == traced.total_cycles
        assert plain.energy.total_pj == traced.energy.total_pj

    def test_bound_by_classification(self, setup):
        arch, dag, schedule, placement = setup
        _, traces = SystemSimulator(arch, dag).run_traced(schedule, placement)
        assert all(t.bound_by in ("compute", "noc", "dram") for t in traces)
        # A round's wall time is never below its binding component.
        for t in traces:
            assert t.round_cycles >= t.compute_cycles
