"""Tests for the event-queue kernel."""

import pytest

from repro.sim import EventQueue, Resource


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [e.kind for e in q.drain()] == ["a", "c", "b"]

    def test_ties_broken_by_insertion(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert [e.kind for e in q.drain()] == ["first", "second"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_len(self):
        q = EventQueue()
        q.push(0.0, "x")
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_payload_carried(self):
        q = EventQueue()
        q.push(0.0, "x", payload={"atom": 7})
        assert q.pop().payload == {"atom": 7}


class TestResource:
    def test_occupies_serially(self):
        r = Resource("engine")
        assert r.occupy(0.0, 10.0) == 10.0
        assert r.occupy(0.0, 5.0) == 15.0  # queued behind the first job

    def test_idle_gap_respected(self):
        r = Resource("dram")
        r.occupy(0.0, 4.0)
        assert r.occupy(20.0, 2.0) == 22.0
