"""Tests for SimTimeline: accounting identities, RunResult agreement."""

import json
import math

import pytest

from repro.atoms.generation import SAParams
from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model
from repro.sim import SimTimeline, SystemSimulator, simulate_timeline

MODELS = ("vgg19_bench", "mobilenet_v2_bench")


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


@pytest.fixture(scope="module", params=MODELS)
def solved(request, arch):
    """(outcome, result, timeline) for one optimized zoo workload."""
    options = OptimizerOptions(
        sa_params=SAParams(max_iterations=8), restarts=2, seed=11
    )
    outcome = AtomicDataflowOptimizer(
        get_model(request.param), arch, options
    ).optimize()
    result, timeline = simulate_timeline(
        arch, outcome.dag, outcome.schedule, outcome.placement
    )
    return outcome, result, timeline


class TestAgainstRunResult:
    def test_totals_match(self, solved):
        outcome, result, tl = solved
        assert result.total_cycles == outcome.result.total_cycles
        assert tl.total_cycles == result.total_cycles
        assert tl.compute_cycles == result.compute_cycles
        assert len(tl.rounds) == result.num_rounds

    def test_pe_utilization_recomputes_exactly(self, solved):
        _, result, tl = solved
        assert math.isclose(
            tl.pe_utilization(), result.pe_utilization, rel_tol=1e-12
        )

    def test_run_timeline_matches_plain_run(self, solved, arch):
        outcome, result, _ = solved
        plain = SystemSimulator(arch, outcome.dag).run(
            outcome.schedule, outcome.placement
        )
        assert plain == result


class TestAccounting:
    def test_busy_stall_idle_sums_to_total(self, solved):
        _, _, tl = solved
        for acc in tl.accounting():
            assert acc.busy_cycles >= 0
            assert acc.stall_cycles >= 0
            assert acc.idle_cycles >= 0
            assert (
                acc.busy_cycles + acc.stall_cycles + acc.idle_cycles
                == tl.total_cycles
            )

    def test_rounds_tile_the_axis(self, solved):
        _, _, tl = solved
        cursor = 0
        for rw in tl.rounds:
            assert rw.start == cursor
            cursor = rw.end
        assert cursor == tl.total_cycles

    def test_intervals_stay_inside_their_round(self, solved):
        _, _, tl = solved
        windows = {rw.index: rw for rw in tl.rounds}
        for iv in tl.intervals:
            rw = windows[iv.round_index]
            assert iv.start >= rw.start + rw.stall_cycles
            assert iv.end <= rw.end

    def test_no_engine_overlap(self, solved):
        _, _, tl = solved
        for engine in range(tl.num_engines):
            ivs = tl.busy_intervals(engine)
            for prev, cur in zip(ivs, ivs[1:]):
                assert cur.start >= prev.end

    def test_every_atom_appears_once(self, solved):
        outcome, _, tl = solved
        atoms = sorted(iv.atom for iv in tl.intervals)
        assert atoms == list(range(outcome.dag.num_atoms))


class TestSamples:
    def test_link_occupancy_within_round_budget(self, solved):
        _, _, tl = solved
        budget = {
            rw.index: rw.blocking_noc_cycles + rw.prefetch_noc_cycles
            for rw in tl.rounds
        }
        assert tl.links, "expected at least one NoC link sample"
        for ls in tl.links:
            assert 0 <= ls.busy_cycles <= budget[ls.round_index]

    def test_hbm_sample_per_round(self, solved):
        _, _, tl = solved
        assert len(tl.hbm) == len(tl.rounds)
        for hs in tl.hbm:
            assert 0.0 <= hs.utilization <= 1.0
            assert hs.bytes_read >= 0 and hs.bytes_written >= 0

    def test_round_bound_by_is_classified(self, solved):
        _, _, tl = solved
        assert {rw.bound_by for rw in tl.rounds} <= {"compute", "noc", "dram"}


class TestSerialization:
    def test_dict_round_trip(self, solved):
        _, _, tl = solved
        assert SimTimeline.from_dict(tl.to_dict()) == tl

    def test_json_round_trip(self, solved):
        _, _, tl = solved
        doc = json.loads(json.dumps(tl.to_dict()))
        assert SimTimeline.from_dict(doc) == tl

    def test_malformed_dict_raises(self):
        with pytest.raises(ValueError):
            SimTimeline.from_dict({"workload": "x"})
