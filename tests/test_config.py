"""Tests for architecture configuration."""

import pytest

from repro.config import (
    DEFAULT_ARCH,
    PROTOTYPE_ARCH,
    ArchConfig,
    EngineConfig,
    EnergyConfig,
    HbmConfig,
    NocConfig,
)


class TestEngineConfig:
    def test_defaults_match_paper(self):
        e = EngineConfig()
        assert e.num_pes == 256
        assert e.buffer_bytes == 128 * 1024
        assert e.frequency_hz == 500e6

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(pe_rows=0)
        with pytest.raises(ValueError):
            EngineConfig(buffer_bytes=-1)


class TestArchConfig:
    def test_default_platform_matches_paper(self):
        assert DEFAULT_ARCH.num_engines == 64
        assert DEFAULT_ARCH.total_pes == 16384
        assert DEFAULT_ARCH.total_buffer_bytes == 8 * 1024 * 1024
        assert DEFAULT_ARCH.hbm.capacity_bytes == 4 * 1024**3

    def test_prototype_platform(self):
        assert PROTOTYPE_ARCH.num_engines == 4
        assert PROTOTYPE_ARCH.engine.num_pes == 1024
        assert PROTOTYPE_ARCH.engine.frequency_hz == 600e6

    def test_with_mesh(self):
        a = DEFAULT_ARCH.with_mesh(4, 4)
        assert a.num_engines == 16
        assert a.engine == DEFAULT_ARCH.engine  # engine untouched

    def test_invalid_mesh_rejected(self):
        with pytest.raises(ValueError):
            ArchConfig(mesh_rows=0)


class TestRepartition:
    def test_preserves_total_budget(self):
        for rows, cols in ((2, 2), (4, 4), (8, 8), (16, 16)):
            a = DEFAULT_ARCH.repartitioned(rows, cols)
            assert a.total_pes == DEFAULT_ARCH.total_pes
            assert a.total_buffer_bytes == DEFAULT_ARCH.total_buffer_bytes

    def test_engines_stay_square_when_possible(self):
        a = DEFAULT_ARCH.repartitioned(4, 4)
        assert a.engine.pe_rows == a.engine.pe_cols == 32

    def test_indivisible_budget_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ARCH.repartitioned(3, 3)


class TestSubConfigs:
    def test_noc_validation(self):
        with pytest.raises(ValueError):
            NocConfig(hop_cycles=0)

    def test_hbm_validation(self):
        with pytest.raises(ValueError):
            HbmConfig(peak_bandwidth_bytes_per_s=0)


class TestNocValidation:
    def test_negative_router_overhead_rejected(self):
        with pytest.raises(ValueError, match="router_overhead_cycles"):
            NocConfig(router_overhead_cycles=-1)

    def test_zero_router_overhead_allowed(self):
        assert NocConfig(router_overhead_cycles=0).router_overhead_cycles == 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            NocConfig(topology="hypercube")


class TestEnergyValidation:
    def test_defaults_valid(self):
        e = EnergyConfig()
        assert e.mac_pj == 0.5

    @pytest.mark.parametrize(
        "field",
        [
            "mac_pj",
            "sram_pj_per_bit",
            "noc_pj_per_bit_hop",
            "hbm_pj_per_bit",
            "static_w_per_engine",
        ],
    )
    def test_negative_constant_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            EnergyConfig(**{field: -0.1})

    def test_zero_constants_allowed(self):
        e = EnergyConfig(mac_pj=0.0, static_w_per_engine=0.0)
        assert e.mac_pj == 0.0
