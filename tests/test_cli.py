"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_mesh_parsing(self):
        args = build_parser().parse_args(
            ["optimize", "--model", "x", "--mesh", "8x8"]
        )
        assert args.mesh == (8, 8)

    def test_bad_mesh_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "--model", "x", "--mesh", "eight"]
            )

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_defaults_match_pinned_config(self):
        args = build_parser().parse_args(["bench"])
        assert args.restarts == 8
        assert args.seed == 0
        assert args.out == "BENCH_perf.json"
        assert args.check is False
        assert args.threshold == 0.25


class TestBenchCheck:
    """The regression verdicts of `repro bench --check` (no search run)."""

    REFERENCE = {
        "restarts": 8,
        "seed": 0,
        "wall_seconds": 20.0,
        "total_cycles": 1_000_000,
        "winner": {"label": "sa[4]", "fingerprint": "abcd"},
    }

    def _report(self, **overrides):
        report = dict(self.REFERENCE)
        report.update(overrides)
        return report

    def test_identical_run_passes(self):
        from repro.perf_bench import check_against

        assert check_against(self._report(), self.REFERENCE, 0.25) == []

    def test_tolerated_slowdown_passes(self):
        from repro.perf_bench import check_against

        report = self._report(wall_seconds=24.9)
        assert check_against(report, self.REFERENCE, 0.25) == []

    def test_wall_time_regression_fails(self):
        from repro.perf_bench import check_against

        report = self._report(wall_seconds=26.0)
        problems = check_against(report, self.REFERENCE, 0.25)
        assert len(problems) == 1 and "regressed" in problems[0]

    def test_result_drift_fails_regardless_of_speed(self):
        from repro.perf_bench import check_against

        report = self._report(
            wall_seconds=1.0,
            total_cycles=999_999,
            winner={"label": "sa[0]", "fingerprint": "ffff"},
        )
        problems = check_against(report, self.REFERENCE, 0.25)
        assert any("bit-exactness" in p for p in problems)
        assert any("winner drifted" in p for p in problems)


class TestCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "vgg19" in out

    def test_optimize_runs(self, capsys, tmp_path):
        rc = main(
            [
                "optimize",
                "--model", "vgg19_bench",
                "--mesh", "2x2",
                "--sa-iterations", "10",
                "--scheduler", "greedy",
                "--gantt", "3",
                "--save", str(tmp_path / "sol.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "PE utilization" in out
        assert "R0" in out  # gantt header
        assert (tmp_path / "sol.json").exists()

    def test_compare_prints_all_strategies(self, capsys):
        rc = main(
            [
                "compare",
                "--model", "vgg19_bench",
                "--mesh", "2x2",
                "--sa-iterations", "10",
                "--scheduler", "greedy",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for strategy in ("AD", "LS", "CNN-P", "IL-Pipe", "Rammer", "Ideal"):
            assert strategy in out

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["optimize", "--model", "alexnet", "--sa-iterations", "5"])
