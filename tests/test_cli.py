"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_mesh_parsing(self):
        args = build_parser().parse_args(
            ["optimize", "--model", "x", "--mesh", "8x8"]
        )
        assert args.mesh == (8, 8)

    def test_bad_mesh_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "--model", "x", "--mesh", "eight"]
            )

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "vgg19" in out

    def test_optimize_runs(self, capsys, tmp_path):
        rc = main(
            [
                "optimize",
                "--model", "vgg19_bench",
                "--mesh", "2x2",
                "--sa-iterations", "10",
                "--scheduler", "greedy",
                "--gantt", "3",
                "--save", str(tmp_path / "sol.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "PE utilization" in out
        assert "R0" in out  # gantt header
        assert (tmp_path / "sol.json").exists()

    def test_compare_prints_all_strategies(self, capsys):
        rc = main(
            [
                "compare",
                "--model", "vgg19_bench",
                "--mesh", "2x2",
                "--sa-iterations", "10",
                "--scheduler", "greedy",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for strategy in ("AD", "LS", "CNN-P", "IL-Pipe", "Rammer", "Ideal"):
            assert strategy in out

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["optimize", "--model", "alexnet", "--sa-iterations", "5"])
