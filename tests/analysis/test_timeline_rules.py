"""Tests for the AD7xx timeline validators."""

from dataclasses import replace

import pytest

from repro.analysis import check_timeline
from repro.config import ArchConfig, EngineConfig
from repro.sim import simulate_timeline

from .conftest import build_tiny_dag


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


@pytest.fixture(scope="module")
def simulated(arch):
    """(result, timeline) for the tiny conv chain on 4 engines."""
    from repro.scheduling import schedule_greedy

    dag = build_tiny_dag()
    schedule = schedule_greedy(dag, arch.num_engines)
    placement = {
        a: slot
        for rnd in schedule.rounds
        for slot, a in enumerate(rnd.atom_indices)
    }
    return simulate_timeline(arch, dag, schedule, placement)


def fired(report):
    return report.fired_rule_ids()


class TestPositive:
    def test_real_timeline_is_clean(self, simulated):
        result, tl = simulated
        report = check_timeline(tl, result=result)
        assert report.ok, report.render()

    def test_result_is_optional(self, simulated):
        _, tl = simulated
        assert check_timeline(tl).ok


class TestAD701:
    def test_duplicated_interval_overlaps(self, simulated):
        _, tl = simulated
        longest = max(tl.intervals, key=lambda iv: iv.duration)
        bad = replace(tl, intervals=tl.intervals + (longest,))
        assert "AD701" in fired(check_timeline(bad))

    def test_shifted_round_breaks_tiling(self, simulated):
        _, tl = simulated
        shifted = replace(tl.rounds[-1], start=tl.rounds[-1].start + 1)
        bad = replace(tl, rounds=tl.rounds[:-1] + (shifted,))
        assert "AD701" in fired(check_timeline(bad))

    def test_escaped_interval_flagged(self, simulated):
        _, tl = simulated
        first = tl.intervals[0]
        escaped = replace(first, start=tl.total_cycles)
        bad = replace(tl, intervals=(escaped,) + tl.intervals[1:])
        assert "AD701" in fired(check_timeline(bad))

    def test_unknown_engine_flagged(self, simulated):
        _, tl = simulated
        rogue = replace(tl.intervals[0], engine=tl.num_engines + 3)
        bad = replace(tl, intervals=(rogue,) + tl.intervals[1:])
        assert "AD701" in fired(check_timeline(bad))


class TestAD702:
    def test_tampered_totals_flagged(self, simulated):
        result, tl = simulated
        bad = replace(result, total_cycles=result.total_cycles + 1)
        assert "AD702" in fired(check_timeline(tl, result=bad))

    def test_tampered_utilization_flagged(self, simulated):
        result, tl = simulated
        bad = replace(
            result, pe_utilization=(result.pe_utilization + 0.5) % 1.0
        )
        assert "AD702" in fired(check_timeline(tl, result=bad))


class TestAD703:
    def test_link_over_budget_flagged(self, simulated):
        _, tl = simulated
        assert tl.links, "tiny chain should move data over the NoC"
        hot = replace(tl.links[0], busy_cycles=tl.total_cycles + 1)
        bad = replace(tl, links=(hot,) + tl.links[1:])
        assert "AD703" in fired(check_timeline(bad))

    def test_impossible_hbm_utilization_flagged(self, simulated):
        _, tl = simulated
        sat = replace(tl.hbm[0], utilization=1.5)
        bad = replace(tl, hbm=(sat,) + tl.hbm[1:])
        assert "AD703" in fired(check_timeline(bad))

    def test_negative_traffic_flagged(self, simulated):
        _, tl = simulated
        neg = replace(tl.hbm[0], bytes_read=-1)
        bad = replace(tl, hbm=(neg,) + tl.hbm[1:])
        assert "AD703" in fired(check_timeline(bad))
