"""AD804-806: lease legality, orphaned leases, retry-cap accounting."""

from __future__ import annotations

import json

from repro.analysis.service_rules import check_job_leases, is_job_journal
from repro.service.jobs import JOB_FORMAT, JOB_VERSION


def _journal(tmp_path, events, max_attempts=3, header=None):
    """Write a synthetic job journal; events are (state, fields) pairs."""
    path = tmp_path / "jobs.jsonl"
    base = {
        "job_id": "job-000001",
        "fingerprint": "ab" * 32,
        "model": "vgg19_bench",
        "tenant": "ci",
        "request": {},
        "source": "search",
        "error": None,
        "total_cycles": None,
        "search_seconds": 0.0,
        "lease_seq": 0,
        "attempt": 0,
        "runner_id": None,
    }
    if header is None:
        header = {
            "format": JOB_FORMAT,
            "version": JOB_VERSION,
            "max_attempts": max_attempts,
        }
    lines = [json.dumps(header)]
    for state, fields in events:
        job = {**base, "state": state, **fields}
        lines.append(json.dumps({"event": state, "job": job}))
    path.write_text("\n".join(lines) + "\n")
    return path


def _rules(report):
    return sorted({d.rule_id for d in report.diagnostics})


LEASE_1 = {"runner_id": "runner-1", "lease_seq": 1, "attempt": 1}
LEASE_2 = {"runner_id": "runner-2", "lease_seq": 2, "attempt": 2}


class TestCleanJournals:
    def test_single_lease_lifecycle(self, tmp_path):
        path = _journal(
            tmp_path,
            [("queued", {}), ("running", LEASE_1), ("done", LEASE_1)],
        )
        assert check_job_leases(path).ok

    def test_reclaim_and_retry_lifecycle(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("running", LEASE_1),
                ("queued", {"lease_seq": 1, "attempt": 1}),
                ("running", LEASE_2),
                ("failed", LEASE_2),
            ],
        )
        assert check_job_leases(path).ok

    def test_never_leased_terminal_records(self, tmp_path):
        """Cache hits and cancelled jobs legitimately never lease."""
        path = _journal(tmp_path, [("done", {"source": "cache"})])
        assert check_job_leases(path).ok

    def test_interleaved_jobs_on_distinct_runners(self, tmp_path):
        second = {
            "job_id": "job-000002",
            "fingerprint": "cd" * 32,
        }
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("queued", second),
                ("running", LEASE_1),
                ("running", {**second, "runner_id": "runner-2",
                             "lease_seq": 2, "attempt": 1}),
                ("done", LEASE_1),
                ("done", {**second, "runner_id": "runner-2",
                          "lease_seq": 2, "attempt": 1}),
            ],
        )
        assert check_job_leases(path).ok


class TestAD804LeaseLegality:
    def test_running_without_runner_id(self, tmp_path):
        path = _journal(
            tmp_path,
            [("queued", {}), ("running", {"lease_seq": 1, "attempt": 1})],
        )
        assert "AD804" in _rules(check_job_leases(path))

    def test_lease_clock_regression(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("running", LEASE_1),
                ("queued", {"lease_seq": 1, "attempt": 1}),
                ("running", {**LEASE_2, "lease_seq": 1}),
                ("done", {**LEASE_2, "lease_seq": 1}),
            ],
        )
        assert "AD804" in _rules(check_job_leases(path))

    def test_attempt_skip(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("running", {**LEASE_1, "attempt": 2}),
                ("done", {**LEASE_1, "attempt": 2}),
            ],
        )
        assert "AD804" in _rules(check_job_leases(path))

    def test_requeue_keeps_runner_id(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("running", LEASE_1),
                ("queued", LEASE_1),  # ownership must be cleared
            ],
        )
        report = check_job_leases(path)
        assert "AD804" in _rules(report)


class TestAD805Orphans:
    def test_journal_ends_mid_lease(self, tmp_path):
        path = _journal(tmp_path, [("queued", {}), ("running", LEASE_1)])
        report = check_job_leases(path)
        assert _rules(report) == ["AD805"]

    def test_runner_with_two_live_leases(self, tmp_path):
        second = {"job_id": "job-000002", "fingerprint": "cd" * 32}
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("queued", second),
                ("running", LEASE_1),
                ("running", {**second, "runner_id": "runner-1",
                             "lease_seq": 2, "attempt": 1}),
                ("done", LEASE_1),
                ("done", {**second, "runner_id": "runner-1",
                          "lease_seq": 2, "attempt": 1}),
            ],
        )
        assert "AD805" in _rules(check_job_leases(path))


class TestAD806RetryCap:
    def test_attempt_over_journaled_cap(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("running", LEASE_1),
                ("queued", {"lease_seq": 1, "attempt": 1}),
                ("running", LEASE_2),
                ("failed", LEASE_2),
            ],
            max_attempts=1,
        )
        assert "AD806" in _rules(check_job_leases(path))

    def test_explicit_cap_overrides_header(self, tmp_path):
        path = _journal(
            tmp_path,
            [("queued", {}), ("running", LEASE_1), ("done", LEASE_1)],
            max_attempts=3,
        )
        assert check_job_leases(path).ok
        # An explicit cap is taken as given, even one the header would
        # reject — the caller is asserting a policy, not describing one.
        report = check_job_leases(path, max_attempts=0)
        assert "AD806" in _rules(report)

    def test_headerless_cap_skips_ad806(self, tmp_path):
        path = _journal(
            tmp_path,
            [
                ("queued", {}),
                ("running", LEASE_1),
                ("queued", {"lease_seq": 1, "attempt": 1}),
                ("running", LEASE_2),
                ("failed", LEASE_2),
            ],
            header={"format": JOB_FORMAT, "version": JOB_VERSION},
        )
        assert check_job_leases(path).ok  # no cap to check against


class TestJournalSniffing:
    def test_job_journal_detected(self, tmp_path):
        path = _journal(tmp_path, [("queued", {})])
        assert is_job_journal(path)

    def test_checkpoint_journal_not_a_job_journal(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"format": "atomic-dataflow-checkpoint", "version": 1}\n')
        assert not is_job_journal(path)

    def test_garbage_not_a_job_journal(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\n")
        assert not is_job_journal(path)
        assert not is_job_journal(tmp_path / "missing.jsonl")

    def test_bad_header_reported(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"format": "something-else"}\n')
        report = check_job_leases(path)
        assert "AD804" in _rules(report)
