"""Positive and negative cases for the seed-flow pass (LINT007-009)."""

from __future__ import annotations

from tests.analysis._static_helpers import FUTURE, analyze, fired


class TestLINT007GlobalRng:
    def test_random_module_function(self, tmp_path):
        src = FUTURE + "import random\nx = random.randint(0, 7)\n"
        assert fired(tmp_path, src) == {"LINT007"}

    def test_legacy_np_random_global(self, tmp_path):
        src = FUTURE + "import numpy as np\nv = np.random.rand(4)\n"
        assert fired(tmp_path, src) == {"LINT007"}

    def test_np_random_seed_is_global_state(self, tmp_path):
        src = FUTURE + "import numpy as np\nnp.random.seed(0)\n"
        assert fired(tmp_path, src) == {"LINT007"}

    def test_unseeded_default_rng(self, tmp_path):
        src = FUTURE + "import numpy as np\nrng = np.random.default_rng()\n"
        assert fired(tmp_path, src) == {"LINT007"}

    def test_seeded_default_rng_allowed(self, tmp_path):
        src = FUTURE + "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert fired(tmp_path, src) == set()

    def test_bare_default_factory_reference(self, tmp_path):
        src = FUTURE + (
            "from dataclasses import dataclass, field\n"
            "import numpy as np\n"
            "@dataclass\n"
            "class S:\n"
            "    rng: np.random.Generator = "
            "field(default_factory=np.random.default_rng)\n"
        )
        assert fired(tmp_path, src) == {"LINT007"}

    def test_seeded_lambda_factory_allowed(self, tmp_path):
        src = FUTURE + (
            "from dataclasses import dataclass, field\n"
            "import numpy as np\n"
            "@dataclass\n"
            "class S:\n"
            "    rng: np.random.Generator = "
            "field(default_factory=lambda: np.random.default_rng(0))\n"
        )
        assert fired(tmp_path, src) == set()

    def test_from_import_alias(self, tmp_path):
        src = FUTURE + "from random import shuffle\nshuffle(items)\n"
        assert fired(tmp_path, src) == {"LINT007"}

    def test_generator_method_allowed(self, tmp_path):
        src = FUTURE + (
            "def step(rng):\n"
            "    return rng.random() < 0.5\n"
        )
        assert fired(tmp_path, src) == set()


class TestLINT008NondetDecision:
    def test_branch_on_clock(self, tmp_path):
        src = FUTURE + (
            "import time\n"
            "def pick(a, b):\n"
            "    now = time.monotonic()\n"
            "    if now > 5.0:\n"
            "        return a\n"
            "    return b\n"
        )
        assert fired(tmp_path, src) == {"LINT008"}

    def test_taint_through_arithmetic(self, tmp_path):
        src = FUTURE + (
            "import time\n"
            "def wait(t0):\n"
            "    delay = time.monotonic() - t0\n"
            "    return delay > 0\n"
        )
        assert fired(tmp_path, src) == {"LINT008"}

    def test_uuid_in_comparison(self, tmp_path):
        src = FUTURE + (
            "import uuid\n"
            "def fresh(old):\n"
            "    return uuid.uuid4().hex != old\n"
        )
        assert fired(tmp_path, src) == {"LINT008"}

    def test_clock_seed_kwarg(self, tmp_path):
        src = FUTURE + (
            "import time\n"
            "import numpy as np\n"
            "def make():\n"
            "    return np.random.default_rng(seed=int(time.time()))\n"
        )
        assert "LINT008" in fired(tmp_path, src)

    def test_sort_key_on_tainted(self, tmp_path):
        src = FUTURE + (
            "import time\n"
            "def order(items):\n"
            "    stamp = time.perf_counter()\n"
            "    return sorted(items, key=lambda x: x - stamp)\n"
        )
        assert fired(tmp_path, src) == {"LINT008"}

    def test_pure_telemetry_allowed(self, tmp_path):
        src = FUTURE + (
            "import time\n"
            "def timed(fn):\n"
            "    t0 = time.perf_counter()\n"
            "    out = fn()\n"
            "    elapsed = time.perf_counter() - t0\n"
            "    return out, elapsed\n"
        )
        assert fired(tmp_path, src) == set()

    def test_untainted_comparison_allowed(self, tmp_path):
        src = FUTURE + (
            "def clamp(x):\n"
            "    return x if x > 0 else 0\n"
        )
        assert fired(tmp_path, src) == set()


class TestLINT009SetIteration:
    def test_for_loop_over_set(self, tmp_path):
        src = FUTURE + (
            "def emit(items):\n"
            "    seen = set(items)\n"
            "    for x in seen:\n"
            "        print(x)\n"
        )
        assert fired(tmp_path, src) == {"LINT009"}

    def test_list_comprehension_over_set(self, tmp_path):
        src = FUTURE + (
            "def emit(items):\n"
            "    seen = {i for i in items}\n"
            "    return [x + 1 for x in seen]\n"
        )
        assert fired(tmp_path, src) == {"LINT009"}

    def test_dict_get_set_default(self, tmp_path):
        src = FUTURE + (
            "def emit(table, key):\n"
            "    holders = table.get(key, set())\n"
            "    return [h for h in holders]\n"
        )
        assert fired(tmp_path, src) == {"LINT009"}

    def test_list_conversion(self, tmp_path):
        src = FUTURE + (
            "def emit(items):\n"
            "    return list(frozenset(items))\n"
        )
        assert fired(tmp_path, src) == {"LINT009"}

    def test_keyed_min_over_set(self, tmp_path):
        src = FUTURE + (
            "def nearest(cands: set, origin):\n"
            "    return min(cands, key=lambda c: abs(c - origin))\n"
        )
        assert fired(tmp_path, src) == {"LINT009"}

    def test_sorted_without_key_allowed(self, tmp_path):
        src = FUTURE + (
            "def emit(items):\n"
            "    seen = set(items)\n"
            "    return sorted(seen)\n"
        )
        assert fired(tmp_path, src) == set()

    def test_keyless_min_allowed(self, tmp_path):
        src = FUTURE + (
            "def smallest(items):\n"
            "    return min(set(items))\n"
        )
        assert fired(tmp_path, src) == set()

    def test_membership_allowed(self, tmp_path):
        src = FUTURE + (
            "def has(items, x):\n"
            "    seen = set(items)\n"
            "    return x in seen\n"
        )
        assert fired(tmp_path, src) == set()

    def test_set_comprehension_result_allowed(self, tmp_path):
        src = FUTURE + (
            "def project(items):\n"
            "    raw = set(items)\n"
            "    return {x * 2 for x in raw}\n"
        )
        assert fired(tmp_path, src) == set()

    def test_dict_iteration_allowed(self, tmp_path):
        src = FUTURE + (
            "def emit(table: dict):\n"
            "    return [k for k in table]\n"
        )
        assert fired(tmp_path, src) == set()


class TestFindingLocations:
    def test_location_has_path_and_line(self, tmp_path):
        src = FUTURE + "import numpy as np\nnp.random.seed(1)\n"
        [finding] = analyze(tmp_path, src)
        assert finding.location.endswith("mod.py:3")
