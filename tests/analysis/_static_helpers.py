"""Shared helpers for the Tier-C static-analysis test modules."""

from __future__ import annotations

import textwrap

from repro.analysis.static import build_call_graph, load_paths, run_passes

FUTURE = "from __future__ import annotations\n"


def write_module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def analyze(tmp_path, source, name="mod.py"):
    """Raw pass findings for one source snippet."""
    return run_passes(load_paths([write_module(tmp_path, source, name)]))


def fired(tmp_path, source, name="mod.py"):
    """The distinct rule ids the passes produce for a snippet."""
    return {f.rule_id for f in analyze(tmp_path, source, name)}


def graph_for(tmp_path, source, name="mod.py"):
    return build_call_graph(load_paths([write_module(tmp_path, source, name)]))
