"""Diagnostic framework: registry, report accounting, JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    ArtifactValidationError,
    Report,
    Severity,
    all_rules,
    assert_valid,
    get_rule,
    register_rule,
)


class TestRegistry:
    def test_all_tier_a_and_b_rules_registered(self):
        ids = {r.rule_id for r in all_rules()}
        expected = {
            "AD101", "AD102", "AD103", "AD104", "AD105", "AD106",
            "AD201", "AD202", "AD203", "AD204", "AD205",
            "AD301", "AD302", "AD303",
            "AD401", "AD402", "AD403",
            "LINT001", "LINT002", "LINT003", "LINT004", "LINT005",
        }
        assert expected <= ids

    def test_rules_sorted_and_described(self):
        rules = all_rules()
        assert [r.rule_id for r in rules] == sorted(r.rule_id for r in rules)
        assert all(r.description for r in rules)
        assert all(r.tier in ("artifact", "lint", "static") for r in rules)

    def test_conflicting_reregistration_rejected(self):
        register_rule("AD103", Severity.ERROR, "artifact",
                      get_rule("AD103").description)  # identical: fine
        with pytest.raises(ValueError):
            register_rule("AD103", Severity.WARNING, "artifact", "changed")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            register_rule("XX999", Severity.ERROR, "nonsense", "bad tier")

    def test_emit_requires_registered_rule(self):
        with pytest.raises(KeyError):
            Report().emit("ZZ000", "here", "never registered")


class TestReport:
    def test_error_warning_partition_and_ok(self):
        r = Report()
        assert r.ok
        r.emit("AD101", "dag", "broken")
        r.emit("AD402", "engine 0", "costly")
        assert not r.ok
        assert len(r.errors) == 1
        assert len(r.warnings) == 1
        assert r.fired_rule_ids() == {"AD101", "AD402"}
        assert len(r.by_rule("AD101")) == 1

    def test_warnings_do_not_fail(self):
        r = Report()
        r.emit("AD403", "atom 0", "oversized output")
        assert r.ok

    def test_render_mentions_rule_and_location(self):
        r = Report()
        r.mark_checked("thing")
        r.emit("AD203", "round 3", "dependency violated")
        text = r.render()
        assert "AD203" in text and "round 3" in text
        assert "1 error(s)" in text

    def test_json_report_is_machine_readable(self):
        r = Report()
        r.mark_checked("artifact-a")
        r.emit("AD101", "dag", "broken")
        doc = json.loads(r.to_json())
        assert doc["ok"] is False
        assert doc["checked"] == ["artifact-a"]
        assert doc["num_errors"] == 1
        assert doc["diagnostics"][0] == {
            "severity": "error",
            "rule_id": "AD101",
            "location": "dag",
            "message": "broken",
        }

    def test_extend_folds_reports(self):
        a, b = Report(), Report()
        a.mark_checked("one")
        b.mark_checked("two")
        b.emit("AD101", "dag", "broken")
        a.extend(b)
        assert a.checked == ["one", "two"]
        assert not a.ok


class TestAssertValid:
    def test_raises_with_report_attached(self):
        r = Report()
        r.emit("AD101", "dag", "broken")
        with pytest.raises(ArtifactValidationError) as exc:
            assert_valid(r)
        assert exc.value.report is r
        assert "AD101" in str(exc.value)

    def test_passes_through_clean_report(self):
        r = Report()
        assert assert_valid(r) is r
