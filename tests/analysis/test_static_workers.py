"""Worker-boundary safety pass tests (LINT010/LINT011)."""

from __future__ import annotations

from tests.analysis._static_helpers import FUTURE, analyze, fired

POOL_PRELUDE = FUTURE + (
    "from concurrent.futures import ProcessPoolExecutor\n"
)


class TestLINT010SharedStateMutation:
    def test_direct_task_mutates_context(self, tmp_path):
        src = POOL_PRELUDE + (
            "def _task(payload, ctx: SearchContext):\n"
            "    ctx.best = payload\n"
            "    return payload\n"
            "def run(items, ctx):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert "LINT010" in fired(tmp_path, src)

    def test_transitive_callee_mutates_dag(self, tmp_path):
        src = POOL_PRELUDE + (
            "def _record(dag: AtomicDAG, value):\n"
            "    dag.atoms.append(value)\n"
            "def _task(payload):\n"
            "    _record(payload.dag, payload.value)\n"
            "    return payload\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert "LINT010" in fired(tmp_path, src)

    def test_mesh_mutator_method(self, tmp_path):
        src = POOL_PRELUDE + (
            "def _task(mesh: Mesh2D):\n"
            "    mesh.routes.update({})\n"
            "    return mesh\n"
            "def run(meshes):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, meshes))\n"
        )
        assert "LINT010" in fired(tmp_path, src)

    def test_self_mutation_allowed(self, tmp_path):
        src = POOL_PRELUDE + (
            "class Tracker:\n"
            "    def _task(self, payload):\n"
            "        self.items.append(payload)\n"
            "        return payload\n"
        )
        assert fired(tmp_path, src) == set()

    def test_unannotated_param_allowed(self, tmp_path):
        src = POOL_PRELUDE + (
            "def _task(bag):\n"
            "    bag.items.append(1)\n"
            "    return bag\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert fired(tmp_path, src) == set()

    def test_unreachable_mutation_allowed(self, tmp_path):
        src = POOL_PRELUDE + (
            "def driver_only(ctx: SearchContext, value):\n"
            "    ctx.best = value\n"
            "def _task(payload):\n"
            "    return payload * 2\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert fired(tmp_path, src) == set()


class TestLINT011GlobalCapture:
    def test_task_writes_module_global(self, tmp_path):
        src = POOL_PRELUDE + (
            "_CACHE = {}\n"
            "def _task(item):\n"
            "    _CACHE[item] = True\n"
            "    return item\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert "LINT011" in fired(tmp_path, src)

    def test_global_statement_in_task(self, tmp_path):
        src = POOL_PRELUDE + (
            "_COUNT = 0\n"
            "def _task(item):\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
            "    return item\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert "LINT011" in fired(tmp_path, src)

    def test_lambda_task(self, tmp_path):
        src = POOL_PRELUDE + (
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x + 1, items))\n"
        )
        assert "LINT011" in fired(tmp_path, src)

    def test_nested_closure_task(self, tmp_path):
        src = POOL_PRELUDE + (
            "def run(items, bias):\n"
            "    def _task(x):\n"
            "        return x + bias\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert "LINT011" in fired(tmp_path, src)

    def test_initializer_own_body_exempt(self, tmp_path):
        src = POOL_PRELUDE + (
            "_WORKER_STATE = None\n"
            "def _init():\n"
            "    global _WORKER_STATE\n"
            "    _WORKER_STATE = {}\n"
            "def _task(item):\n"
            "    return item\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor(initializer=_init) as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert fired(tmp_path, src) == set()

    def test_global_read_allowed(self, tmp_path):
        src = POOL_PRELUDE + (
            "_TABLE = {1: 2}\n"
            "def _task(item):\n"
            "    return _TABLE.get(item, 0)\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_task, items))\n"
        )
        assert fired(tmp_path, src) == set()

    def test_global_write_outside_worker_allowed(self, tmp_path):
        src = FUTURE + (
            "_CACHE = {}\n"
            "def memo(key, value):\n"
            "    _CACHE[key] = value\n"
        )
        assert fired(tmp_path, src) == set()

    def test_submit_spelling(self, tmp_path):
        src = POOL_PRELUDE + (
            "_LOG = []\n"
            "def _task(item):\n"
            "    _LOG.append(item)\n"
            "    return item\n"
            "def run(items, pool):\n"
            "    return [pool.submit(_task, i) for i in items]\n"
        )
        assert "LINT011" in fired(tmp_path, src)


class TestWorkerFindingDetail:
    def test_message_names_task_root(self, tmp_path):
        src = POOL_PRELUDE + (
            "_CACHE = {}\n"
            "def _task(item):\n"
            "    _CACHE[item] = True\n"
            "    return item\n"
            "def run(items, pool):\n"
            "    return list(pool.map(_task, items))\n"
        )
        findings = [f for f in analyze(tmp_path, src) if f.rule_id == "LINT011"]
        assert findings
        assert any("_task" in f.message or "_CACHE" in f.message for f in findings)
