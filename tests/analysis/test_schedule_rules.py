"""Negative-path tests: one minimally-broken artifact per AD2xx/AD3xx rule.

The greedy schedule of the tiny 3-layer chain on 2 engines is
``(c1_0, c1_1) -> (c2_0, c2_1) -> (c3_0, c3_1)`` (atoms 0..5); every
corruption below perturbs exactly one legality property of it.
"""

from __future__ import annotations

from repro.analysis import check_placement, check_schedule
from repro.noc import Mesh2D
from repro.scheduling import Round, Schedule
from repro.scheduling.dp import default_round_cost


def fired_schedule(dag, schedule, num_engines, **kw):
    return check_schedule(dag, schedule, num_engines, **kw).fired_rule_ids()


class TestCleanSchedule:
    def test_no_findings(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        report = check_schedule(dag, schedule, 2)
        assert report.ok and not report.diagnostics

    def test_matching_reported_cost_is_clean(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        total = sum(
            default_round_cost(dag, r.atom_indices) for r in schedule.rounds
        )
        assert fired_schedule(
            dag, schedule, 2, expected_cost=total
        ) == frozenset()


class TestAD201ExactlyOnce:
    def test_dropped_round_leaves_atoms_unscheduled(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        broken = Schedule(rounds=schedule.rounds[:-1])
        assert fired_schedule(dag, broken, 2) == {"AD201"}

    def test_duplicate_atom(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        # Replace dependency-free c3_1 with a second copy of root atom 0.
        broken = Schedule(rounds=schedule.rounds[:-1] + [Round(2, (4, 0))])
        assert fired_schedule(dag, broken, 2) == {"AD201"}

    def test_out_of_range_index(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        broken = Schedule(rounds=schedule.rounds[:-1] + [Round(2, (4, 99))])
        assert fired_schedule(dag, broken, 2) == {"AD201"}


class TestAD202RoundWidth:
    def test_overfull_round(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        # The same two-wide rounds are illegal on a single engine.
        assert fired_schedule(dag, schedule, 1) == {"AD202"}

    def test_empty_round(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        broken = Schedule(rounds=schedule.rounds + [Round(3, ())])
        assert fired_schedule(dag, broken, 2) == {"AD202"}


class TestAD203Dependencies:
    def test_swapped_rounds(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        r0, r1, r2 = schedule.rounds
        broken = Schedule(
            rounds=[
                Round(0, r1.atom_indices),
                Round(1, r0.atom_indices),
                r2,
            ]
        )
        assert fired_schedule(dag, broken, 2) == {"AD203"}


class TestAD204Contiguity:
    def test_misnumbered_round(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        r2 = schedule.rounds[2]
        broken = Schedule(
            rounds=schedule.rounds[:-1] + [Round(5, r2.atom_indices)]
        )
        assert fired_schedule(dag, broken, 2) == {"AD204"}


class TestAD205CostCrossCheck:
    def test_drifted_reported_cost(self, tiny_solution):
        dag, schedule, _ = tiny_solution
        total = sum(
            default_round_cost(dag, r.atom_indices) for r in schedule.rounds
        )
        assert fired_schedule(
            dag, schedule, 2, expected_cost=total * 1.5 + 1.0
        ) == {"AD205"}


def fired_placement(dag, schedule, placement, mesh):
    return check_placement(dag, schedule, placement, mesh).fired_rule_ids()


class TestPlacementRules:
    MESH = Mesh2D(1, 2)

    def test_clean_placement(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        report = check_placement(dag, schedule, placement, self.MESH)
        assert report.ok and not report.diagnostics

    def test_ad301_missing_assignment(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        del placement[3]
        assert fired_placement(dag, schedule, placement, self.MESH) == {
            "AD301"
        }

    def test_ad302_engine_collision(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        placement[1] = placement[0]
        assert fired_placement(dag, schedule, placement, self.MESH) == {
            "AD302"
        }

    def test_ad303_out_of_mesh(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        placement[5] = self.MESH.num_engines
        assert fired_placement(dag, schedule, placement, self.MESH) == {
            "AD303"
        }
