"""Numeric-contract pass tests (LINT012/LINT013)."""

from __future__ import annotations

from tests.analysis._static_helpers import FUTURE, fired


class TestLINT012FloatCeil:
    def test_math_ceil_of_true_division(self, tmp_path):
        src = FUTURE + (
            "import math\n"
            "def batches(total, size):\n"
            "    return math.ceil(total / size)\n"
        )
        assert fired(tmp_path, src) == {"LINT012"}

    def test_np_ceil_of_true_division(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def batches(total, size):\n"
            "    return np.ceil(total / size)\n"
        )
        assert fired(tmp_path, src) == {"LINT012"}

    def test_ceil_of_nested_division(self, tmp_path):
        src = FUTURE + (
            "import math\n"
            "def tiles(h, w, t):\n"
            "    return math.ceil((h * w) / (t * t))\n"
        )
        assert fired(tmp_path, src) == {"LINT012"}

    def test_math_fsum_flagged(self, tmp_path):
        src = FUTURE + (
            "import math\n"
            "def total(xs):\n"
            "    return math.fsum(xs)\n"
        )
        assert fired(tmp_path, src) == {"LINT012"}

    def test_np_add_reduce_flagged(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def total(xs):\n"
            "    return np.add.reduce(xs)\n"
        )
        assert fired(tmp_path, src) == {"LINT012"}

    def test_ceil_div_allowed(self, tmp_path):
        src = FUTURE + (
            "from repro.intmath import ceil_div\n"
            "def batches(total, size):\n"
            "    return ceil_div(total, size)\n"
        )
        assert fired(tmp_path, src) == set()

    def test_ceil_of_plain_float_allowed(self, tmp_path):
        src = FUTURE + (
            "import math\n"
            "def up(x):\n"
            "    return math.ceil(x)\n"
        )
        assert fired(tmp_path, src) == set()

    def test_floor_division_allowed(self, tmp_path):
        src = FUTURE + (
            "def batches(total, size):\n"
            "    return -(-total // size)\n"
        )
        assert fired(tmp_path, src) == set()

    def test_contract_module_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        src = FUTURE + (
            "import math\n"
            "def batches(total, size):\n"
            "    return math.ceil(total / size)\n"
        )
        assert fired(tmp_path, src, name="repro/engine/batch.py") == set()


class TestLINT013OverflowProduct:
    def test_np_prod_without_dtype(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def volume(shape):\n"
            "    return np.prod(shape)\n"
        )
        assert fired(tmp_path, src) == {"LINT013"}

    def test_array_prod_method_without_dtype(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def volume(arr):\n"
            "    return arr.prod()\n"
        )
        assert fired(tmp_path, src) == {"LINT013"}

    def test_np_prod_with_dtype_allowed(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def volume(shape):\n"
            "    return np.prod(shape, dtype=np.int64)\n"
        )
        assert fired(tmp_path, src) == set()

    def test_math_prod_allowed(self, tmp_path):
        src = FUTURE + (
            "import math\n"
            "def volume(shape):\n"
            "    return math.prod(shape)\n"
        )
        assert fired(tmp_path, src) == set()

    def test_long_mult_chain_in_numpy_function(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def macs(n, c, h, w, k):\n"
            "    lanes = np.zeros(4)\n"
            "    return n * c * h * w * k + int(lanes.sum())\n"
        )
        assert fired(tmp_path, src) == {"LINT013"}

    def test_long_chain_without_numpy_allowed(self, tmp_path):
        src = FUTURE + (
            "def macs(n, c, h, w, k):\n"
            "    return n * c * h * w * k\n"
        )
        assert fired(tmp_path, src) == set()

    def test_short_chain_in_numpy_function_allowed(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def area(h, w):\n"
            "    lanes = np.zeros(4)\n"
            "    return h * w + int(lanes.sum())\n"
        )
        assert fired(tmp_path, src) == set()

    def test_numpy_elsewhere_in_module_allowed(self, tmp_path):
        src = FUTURE + (
            "import numpy as np\n"
            "def vectorized(xs):\n"
            "    return np.asarray(xs)\n"
            "def macs(n, c, h, w, k):\n"
            "    return n * c * h * w * k\n"
        )
        assert fired(tmp_path, src) == set()
