"""Positive and negative cases for every Tier-B lint rule (LINT001-006)."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source

FUTURE = "from __future__ import annotations\n"


def fired(source, path="src/repro/mod.py", **kw):
    src = textwrap.dedent(source)
    return lint_source(src, path, **kw).fired_rule_ids()


class TestLINT001FloatEquality:
    def test_eq_against_float_literal(self):
        assert fired(FUTURE + "ok = cost == 1.5\n") == {"LINT001"}

    def test_neq_and_negative_literal(self):
        assert fired(FUTURE + "bad = -2.0 != cost\n") == {"LINT001"}

    def test_integer_equality_allowed(self):
        assert fired(FUTURE + "ok = cost == 3\n") == frozenset()

    def test_float_ordering_allowed(self):
        assert fired(FUTURE + "ok = cost < 1.5\n") == frozenset()

    def test_tolerance_helper_exempt(self):
        src = FUTURE + textwrap.dedent(
            """
            def cost_is_close(a):
                return a == 1.5
            """
        )
        assert fired(src) == frozenset()

    def test_non_tolerance_function_not_exempt(self):
        src = FUTURE + textwrap.dedent(
            """
            def evaluate(a):
                return a == 1.5
            """
        )
        assert fired(src) == {"LINT001"}


class TestLINT002DagMutation:
    def test_subscript_assignment(self):
        assert fired(FUTURE + "dag.preds[0] = ()\n") == {"LINT002"}

    def test_mutator_call(self):
        assert fired(FUTURE + "dag.costs.append(c)\n") == {"LINT002"}

    def test_augmented_assignment(self):
        assert fired(FUTURE + "dag.succs[1] += (2,)\n") == {"LINT002"}

    def test_edge_bytes_update(self):
        assert fired(FUTURE + "dag.edge_bytes.update(extra)\n") == {"LINT002"}

    def test_atoms_package_exempt(self):
        src = FUTURE + "dag.preds[0] = ()\n"
        assert (
            fired(src, path="src/repro/atoms/builder.py") == frozenset()
        )
        assert fired(src, in_atoms_pkg=True) == frozenset()

    def test_reading_flat_arrays_allowed(self):
        assert fired(FUTURE + "n = len(dag.preds[0])\n") == frozenset()

    def test_unrelated_attribute_allowed(self):
        assert fired(FUTURE + "self.results.append(r)\n") == frozenset()


class TestLINT003FutureImport:
    def test_missing_future_import(self):
        assert fired("x = 1\n") == {"LINT003"}

    def test_present_future_import(self):
        assert fired(FUTURE + "x = 1\n") == frozenset()

    def test_docstring_only_module_exempt(self):
        assert fired('"""Just a docstring."""\n') == frozenset()

    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", "src/repro/mod.py")
        assert report.fired_rule_ids() == {"LINT003"}
        assert "parse" in report.diagnostics[0].message


class TestLINT004BareExcept:
    def test_bare_except(self):
        src = FUTURE + textwrap.dedent(
            """
            try:
                risky()
            except:
                pass
            """
        )
        assert fired(src) == {"LINT004"}

    def test_typed_except_allowed(self):
        src = FUTURE + textwrap.dedent(
            """
            try:
                risky()
            except ValueError:
                pass
            """
        )
        assert fired(src) == frozenset()


class TestLINT005MutableDefaults:
    def test_list_default(self):
        assert fired(FUTURE + "def f(seen=[]):\n    pass\n") == {"LINT005"}

    def test_dict_call_default(self):
        assert fired(FUTURE + "def f(cache=dict()):\n    pass\n") == {
            "LINT005"
        }

    def test_kwonly_set_default(self):
        assert fired(FUTURE + "def f(*, s={1}):\n    pass\n") == {"LINT005"}

    def test_none_default_allowed(self):
        assert fired(FUTURE + "def f(seen=None):\n    pass\n") == frozenset()

    def test_tuple_default_allowed(self):
        assert fired(FUTURE + "def f(seen=()):\n    pass\n") == frozenset()


class TestLINT006DirectSimulatorConstruction:
    def test_direct_construction_flagged(self):
        assert fired(FUTURE + "sim = SystemSimulator(arch, dag)\n") == {
            "LINT006"
        }

    def test_attribute_construction_flagged(self):
        src = FUTURE + "sim = repro.sim.SystemSimulator(arch, dag)\n"
        assert fired(src) == {"LINT006"}

    def test_sim_package_exempt(self):
        src = FUTURE + "sim = SystemSimulator(arch, dag)\n"
        assert fired(src, path="src/repro/sim/simulator.py") == frozenset()

    def test_pipeline_evaluation_stage_exempt(self):
        src = FUTURE + "sim = SystemSimulator(arch, dag)\n"
        assert fired(src, path="src/repro/pipeline.py") == frozenset()

    def test_benchmarks_and_tests_exempt(self):
        src = FUTURE + "sim = SystemSimulator(arch, dag)\n"
        assert fired(src, path="benchmarks/_common.py") == frozenset()
        assert fired(src, path="tests/sim/test_simulator.py") == frozenset()

    def test_override_beats_path_inference(self):
        src = FUTURE + "sim = SystemSimulator(arch, dag)\n"
        assert fired(
            src, path="benchmarks/_common.py", may_build_simulator=False
        ) == {"LINT006"}

    def test_context_helper_allowed(self):
        src = FUTURE + "sim = ctx.simulator(dag, strategy)\n"
        assert fired(src) == frozenset()


class TestLocations:
    def test_location_includes_path_and_line(self):
        report = lint_source(FUTURE + "x = cost == 1.5\n", "pkg/mod.py")
        [diag] = report.diagnostics
        assert diag.location == "pkg/mod.py:2"
