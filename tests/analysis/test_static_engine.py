"""Engine plumbing: loader, call graph, summaries, baseline, CLI."""

from __future__ import annotations

import json

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.static import (
    STATIC_RULES,
    apply_baseline,
    load_baseline,
    load_paths,
    module_name_for,
    parse_suppressions,
    run_static_analysis,
    run_static_self_check,
    save_baseline,
    summarize_all,
)
from repro.obs.metrics import get_registry
from tests.analysis._static_helpers import (
    FUTURE,
    graph_for,
    write_module,
)

NP_SEED = FUTURE + "import numpy as np\nnp.random.seed(1)\n"


class TestLoader:
    def test_module_name_walks_packages(self, tmp_path):
        pkg = tmp_path / "outer" / "inner"
        pkg.mkdir(parents=True)
        (tmp_path / "outer" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "leaf.py"
        mod.write_text("x = 1\n")
        assert module_name_for(mod) == "outer.inner.leaf"

    def test_load_paths_recurses_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        modules = load_paths([tmp_path])
        assert [m.path.name for m in modules] == ["a.py", "b.py"]

    def test_same_line_suppression(self):
        sups = parse_suppressions(
            "x = f()  # static-ok: LINT008 -- replay is deterministic\n"
        )
        [sup] = sups[1]
        assert sup.rule_ids == ("LINT008",)
        assert sup.justification == "replay is deterministic"

    def test_comment_above_attaches_to_next_code_line(self):
        source = (
            "# static-ok: LINT011 -- worker installs its own copy\n"
            "\n"
            "# another comment\n"
            "_STATE = {}\n"
        )
        sups = parse_suppressions(source)
        assert 4 in sups
        assert sups[4][0].rule_ids == ("LINT011",)

    def test_multi_rule_suppression(self):
        sups = parse_suppressions(
            "y = g()  # static-ok: LINT008, LINT009 -- both benign here\n"
        )
        assert sups[1][0].rule_ids == ("LINT008", "LINT009")

    def test_suppression_for_wrong_rule_is_none(self, tmp_path):
        path = write_module(
            tmp_path,
            FUTURE + "x = 1  # static-ok: LINT009 -- reason\n",
        )
        [module] = load_paths([path])
        assert module.suppression_for(2, "LINT009") is not None
        assert module.suppression_for(2, "LINT008") is None


class TestCallGraph:
    def test_local_direct_call_edge(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE + "def a():\n    return b()\ndef b():\n    return 1\n",
        )
        assert "mod.b" in graph.edges["mod.a"]

    def test_method_call_over_approximation(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE
            + (
                "class P:\n"
                "    def go(self):\n"
                "        return 1\n"
                "class Q:\n"
                "    def go(self):\n"
                "        return 2\n"
                "def drive(obj):\n"
                "    return obj.go()\n"
            ),
        )
        assert {"mod.P.go", "mod.Q.go"} <= graph.edges["mod.drive"]

    def test_nested_function_edge(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE
            + (
                "def outer():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner\n"
            ),
        )
        assert "mod.inner" in graph.edges["mod.outer"]
        assert graph.functions["mod.inner"].is_nested

    def test_reachability_is_transitive(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE
            + (
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    return 1\n"
                "def island():\n    return 0\n"
            ),
        )
        reach = graph.reachable_from({"mod.a"})
        assert {"mod.a", "mod.b", "mod.c"} <= reach
        assert "mod.island" not in reach


class TestSummaries:
    def test_pure_function(self, tmp_path):
        graph = graph_for(
            tmp_path, FUTURE + "def f(x):\n    return x + 1\n"
        )
        summaries = summarize_all(graph)
        assert summaries["mod.f"].is_pure
        assert summaries["mod.f"].transitively_pure

    def test_param_mutation_recorded(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE + "def f(bag):\n    bag.items.append(1)\n",
        )
        summary = summarize_all(graph)["mod.f"]
        assert not summary.is_pure
        assert any(m.receiver == "bag" for m in summary.mutations)

    def test_global_write_recorded(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE + "_C = {}\ndef f(k):\n    _C[k] = 1\n",
        )
        summary = summarize_all(graph)["mod.f"]
        assert any(m.receiver == "_C" for m in summary.global_writes)

    def test_transitive_impurity_propagates(self, tmp_path):
        graph = graph_for(
            tmp_path,
            FUTURE
            + (
                "_C = {}\n"
                "def sink(k):\n    _C[k] = 1\n"
                "def relay(k):\n    return sink(k)\n"
            ),
        )
        summaries = summarize_all(graph)
        assert summaries["mod.relay"].is_pure
        assert not summaries["mod.relay"].transitively_pure


class TestBaseline:
    def _one_finding(self, tmp_path):
        result = run_static_analysis([write_module(tmp_path, NP_SEED)])
        [finding] = result.unsuppressed
        return finding

    def test_save_load_roundtrip(self, tmp_path):
        finding = self._one_finding(tmp_path)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, [finding])
        [entry] = load_baseline(baseline)
        assert entry.rule_id == finding.rule_id
        assert entry.message == finding.message

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_baselined_finding_not_reemitted(self, tmp_path):
        path = write_module(tmp_path, NP_SEED)
        baseline = tmp_path / "baseline.json"
        first = run_static_analysis([path])
        save_baseline(baseline, first.unsuppressed)
        second = run_static_analysis([path], baseline_path=baseline)
        assert second.report.ok
        assert len(second.baselined) == 1

    def test_baseline_survives_line_shift(self, tmp_path):
        path = write_module(tmp_path, NP_SEED)
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline, run_static_analysis([path]).unsuppressed
        )
        path.write_text("# a new leading comment\n" + NP_SEED)
        shifted = run_static_analysis([path], baseline_path=baseline)
        assert shifted.report.ok

    def test_stale_entry_is_error(self, tmp_path):
        path = write_module(tmp_path, NP_SEED)
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline, run_static_analysis([path]).unsuppressed
        )
        path.write_text(FUTURE + "import numpy as np\n")
        result = run_static_analysis([path], baseline_path=baseline)
        assert not result.report.ok
        assert len(result.stale_entries) == 1
        assert any(
            "stale baseline entry" in d.message
            for d in result.report.errors
        )

    def test_apply_baseline_splits_new_from_accepted(self, tmp_path):
        finding = self._one_finding(tmp_path)
        match = apply_baseline([finding], [])
        assert match.new_findings == [finding]
        assert match.accepted == [] and match.stale == []


class TestSuppressionFiltering:
    def test_justified_suppression_silences(self, tmp_path):
        path = write_module(
            tmp_path,
            FUTURE
            + "import numpy as np\n"
            + "np.random.seed(1)  # static-ok: LINT007 -- demo script\n",
        )
        result = run_static_analysis([path])
        assert result.report.ok
        assert len(result.suppressed) == 1

    def test_unjustified_suppression_reemits(self, tmp_path):
        path = write_module(
            tmp_path,
            FUTURE
            + "import numpy as np\n"
            + "np.random.seed(1)  # static-ok: LINT007\n",
        )
        result = run_static_analysis([path])
        assert not result.report.ok
        [diag] = result.report.errors
        assert "does not suppress" in diag.message


class TestSelfCheck:
    def test_planted_hazards_all_detected(self):
        ok, text = run_static_self_check()
        assert ok, text
        for rule_id in STATIC_RULES:
            assert rule_id in text


class TestMetrics:
    def test_pass_timing_and_finding_counters(self, tmp_path):
        registry = get_registry()
        before = registry.snapshot()
        run_static_analysis([write_module(tmp_path, NP_SEED)])
        after = registry.snapshot()
        hist = after.histograms["static.pass_seconds.seedflow"]
        prev = before.histograms.get("static.pass_seconds.seedflow")
        assert hist["count"] > (prev["count"] if prev else 0)
        assert after.counters["static.findings.LINT007"] >= (
            before.counters.get("static.findings.LINT007", 0) + 1
        )


class TestCli:
    def test_static_clean_exit_zero(self, tmp_path, capsys):
        path = write_module(tmp_path, FUTURE + "x = 1\n")
        rc = analysis_main(["--static", str(path)])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_static_finding_exit_one(self, tmp_path, capsys):
        path = write_module(tmp_path, NP_SEED)
        rc = analysis_main(["--static", str(path)])
        assert rc == 1
        assert "LINT007" in capsys.readouterr().out

    def test_missing_path_exit_two(self, tmp_path, capsys):
        rc = analysis_main(["--static", str(tmp_path / "nope.py")])
        assert rc == 2

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        path = write_module(tmp_path, NP_SEED)
        baseline = tmp_path / "baseline.json"
        rc = analysis_main(
            ["--update-baseline", "--baseline", str(baseline), str(path)]
        )
        assert rc == 0
        data = json.loads(baseline.read_text())
        assert len(data["entries"]) == 1
        capsys.readouterr()
        rc = analysis_main(
            ["--static", "--baseline", str(baseline), str(path)]
        )
        assert rc == 0

    def test_json_output_shape(self, tmp_path, capsys):
        path = write_module(tmp_path, NP_SEED)
        rc = analysis_main(["--static", "--json", str(path)])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["rule_id"] == "LINT007"


class TestRuleRegistration:
    def test_all_static_rules_registered(self):
        from repro.analysis.diagnostics import get_rule

        for rule_id in (
            "LINT007",
            "LINT008",
            "LINT009",
            "LINT010",
            "LINT011",
            "LINT012",
            "LINT013",
        ):
            rule = get_rule(rule_id)
            assert rule.tier == "static"

    def test_repro_source_tree_is_clean(self):
        import repro
        from pathlib import Path

        result = run_static_analysis([Path(repro.__file__).parent])
        assert result.report.ok, result.report.render()
