"""AD604 exchange-legality tests over synthetic tempering journals."""

import json

from repro.analysis.tempering_rules import (
    check_tempering_journal,
    check_tempering_records,
)


def _exchange(seq, segment, lower, accepted):
    return {
        "seq": seq,
        "segment": segment,
        "lower": lower,
        "upper": lower + 1,
        "energy_lower": 0.2,
        "energy_upper": 0.4,
        "accepted": accepted,
    }


def _record(segment, rungs, replicas, exchanges, next_seq):
    return {
        "label": f"pt-segment[{segment}]",
        "kind": "pt-segment",
        "segment": segment,
        "rungs": rungs,
        "states": [{"replica": r} for r in replicas],
        "replicas": list(replicas),
        "exchanges": exchanges,
        "next_seq": next_seq,
    }


def _legal():
    """Three rungs, two exchange segments, one accepted swap each."""
    return [
        _record(0, 3, [1, 0, 2], [_exchange(1, 0, 0, True)], 1),
        _record(1, 3, [1, 2, 0], [_exchange(2, 1, 1, True)], 2),
        _record(2, 3, [1, 2, 0], [], 2),  # harvest segment, no proposals
    ]


class TestLegalHistories:
    def test_legal_history_is_clean(self):
        assert check_tempering_records(_legal()).ok

    def test_empty_record_set_is_clean(self):
        assert check_tempering_records([]).ok

    def test_rejected_swaps_leave_replicas_fixed(self):
        records = [
            _record(0, 2, [0, 1], [_exchange(1, 0, 0, False)], 1),
            _record(1, 2, [0, 1], [], 1),
        ]
        assert check_tempering_records(records).ok


class TestCorruptions:
    def _fires(self, records):
        report = check_tempering_records(records)
        assert "AD604" in report.fired_rule_ids()

    def test_non_neighbor_swap(self):
        records = _legal()
        records[0]["exchanges"][0]["upper"] = 2
        self._fires(records)

    def test_swap_outside_ladder(self):
        records = _legal()
        records[1]["exchanges"][0]["lower"] = 2
        records[1]["exchanges"][0]["upper"] = 3
        self._fires(records)

    def test_parity_mismatch(self):
        records = _legal()
        records[1]["exchanges"][0]["lower"] = 0
        records[1]["exchanges"][0]["upper"] = 1
        self._fires(records)

    def test_decreasing_seq(self):
        records = _legal()
        records[1]["exchanges"][0]["seq"] = 1
        records[1]["next_seq"] = 1
        self._fires(records)

    def test_next_seq_breaks_chain(self):
        records = _legal()
        records[0]["next_seq"] = 7
        self._fires(records)

    def test_duplicated_replica_id(self):
        records = _legal()
        records[0]["replicas"] = [0, 0, 2]
        for doc, r in zip(records[0]["states"], [0, 0, 2]):
            doc["replica"] = r
        self._fires(records)

    def test_replicas_ignore_accepted_swap(self):
        records = _legal()
        # Segment 0 accepted (0,1) but the permutation claims identity.
        records[0]["replicas"] = [0, 1, 2]
        for doc, r in zip(records[0]["states"], [0, 1, 2]):
            doc["replica"] = r
        self._fires(records)

    def test_state_replica_disagrees_with_record(self):
        records = _legal()
        records[0]["states"][0]["replica"] = 2
        self._fires(records)

    def test_segment_gap(self):
        records = [_legal()[0], _legal()[2]]
        self._fires(records)

    def test_duplicate_segment(self):
        records = [_legal()[0], _legal()[0]]
        self._fires(records)

    def test_rung_count_flips_mid_run(self):
        records = _legal()
        records[1]["rungs"] = 4
        self._fires(records)


class TestJournalFile:
    def test_journal_without_tempering_records_is_clean(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        path.write_text(
            json.dumps({"format": "x", "version": 1, "key": {}}) + "\n"
            + json.dumps({"label": "sa[0]", "fingerprint": "f"}) + "\n"
        )
        assert check_tempering_journal(path).ok

    def test_journal_with_legal_records_is_clean(self, tmp_path):
        path = tmp_path / "pt.jsonl"
        lines = [json.dumps({"format": "x", "version": 1, "key": {}})]
        lines += [json.dumps(r) for r in _legal()]
        path.write_text("\n".join(lines) + "\n")
        assert check_tempering_journal(path).ok

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "pt.jsonl"
        lines = [json.dumps(r) for r in _legal()]
        path.write_text("\n".join(lines) + "\n" + '{"label": "pt-seg')
        assert check_tempering_journal(path).ok

    def test_corrupt_record_fires_in_file_form(self, tmp_path):
        records = _legal()
        records[0]["exchanges"][0]["upper"] = 2
        path = tmp_path / "pt.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        report = check_tempering_journal(path)
        assert "AD604" in report.fired_rule_ids()

    def test_missing_journal_reported(self, tmp_path):
        report = check_tempering_journal(tmp_path / "absent.jsonl")
        assert "AD604" in report.fired_rule_ids()
