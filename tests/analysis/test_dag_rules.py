"""Negative-path tests: one minimally-broken DAG per AD1xx rule.

Each corruption is constructed so *only* the rule under test fires —
e.g. breaking pred/succ symmetry is done on the succ side so the Kahn
toposort (AD103) is unaffected, and seeded cycles keep ``edge_bytes``
consistent so AD104 stays silent.
"""

from __future__ import annotations

from repro.analysis import check_dag
from repro.ir import TensorShape

from tests.analysis.conftest import build_tiny_dag, corrupted


def fired(dag):
    return check_dag(dag).fired_rule_ids()


class TestCleanDag:
    def test_no_findings(self, tiny_dag):
        report = check_dag(tiny_dag)
        assert report.ok
        assert not report.diagnostics
        assert report.checked  # analyzed something

    def test_batched_dag_clean(self):
        assert fired(build_tiny_dag(batch=2)) == frozenset()


class TestAD101IndexAlignment:
    def test_shortened_costs_array(self, tiny_dag):
        dag = corrupted(tiny_dag)
        dag.costs.pop()
        assert fired(dag) == {"AD101"}

    def test_extra_preds_entry(self, tiny_dag):
        dag = corrupted(tiny_dag)
        dag.preds.append(())
        assert fired(dag) == {"AD101"}


class TestAD102Mirroring:
    def test_succ_without_pred(self, tiny_dag):
        dag = corrupted(tiny_dag)
        last = dag.num_atoms - 1
        dag.succs[0] = dag.succs[0] + (last,)
        assert fired(dag) == {"AD102"}


class TestAD103Acyclicity:
    def test_two_atom_cycle(self, tiny_dag):
        dag = corrupted(tiny_dag)
        # Atom 2 (layer c2) already depends on atom 0 (layer c1); add the
        # reverse edge with full pred/succ/edge_bytes consistency so only
        # the cycle itself is illegal.
        assert 0 in dag.preds[2]
        dag.preds[0] = dag.preds[0] + (2,)
        dag.succs[2] = dag.succs[2] + (0,)
        dag.edge_bytes[(2, 0)] = 1
        assert fired(dag) == {"AD103"}


class TestAD104EdgeBytes:
    def test_phantom_entry(self, tiny_dag):
        dag = corrupted(tiny_dag)
        assert 0 not in dag.preds[1]  # same-layer atoms share no edge
        dag.edge_bytes[(1, 0)] = 7
        assert fired(dag) == {"AD104"}

    def test_missing_entry(self, tiny_dag):
        dag = corrupted(tiny_dag)
        key = next(iter(dag.edge_bytes))
        del dag.edge_bytes[key]
        assert fired(dag) == {"AD104"}


class TestAD105BatchIsomorphism:
    def test_edge_dropped_from_second_sample(self):
        dag = corrupted(build_tiny_dag(batch=2))
        # Find an intra-sample edge of sample 1 and remove it everywhere
        # (preds, succs, edge_bytes stay mutually consistent).
        consumer = next(
            i
            for i in range(dag.num_atoms)
            if dag.atoms[i].sample == 1 and dag.preds[i]
        )
        producer = dag.preds[consumer][0]
        assert dag.atoms[producer].sample == 1
        dag.preds[consumer] = tuple(
            p for p in dag.preds[consumer] if p != producer
        )
        dag.succs[producer] = tuple(
            s for s in dag.succs[producer] if s != consumer
        )
        del dag.edge_bytes[(producer, consumer)]
        assert fired(dag) == {"AD105"}


class _HalfCoverageGrid:
    """A grid whose regions leave part of the output uncovered."""

    def __init__(self, real_grid):
        self._real = real_grid
        self.shape = real_grid.shape
        self.tile = real_grid.tile
        self.num_tiles = real_grid.num_tiles

    def regions(self):
        return self._real.regions()[:-1]


class TestAD106Coverage:
    def test_uncovered_output(self, tiny_dag):
        dag = corrupted(tiny_dag)
        layer = next(iter(dag.grids))
        dag.grids[layer] = _HalfCoverageGrid(dag.grids[layer])
        assert fired(dag) == {"AD106"}
        assert isinstance(dag.grids[layer].shape, TensorShape)
