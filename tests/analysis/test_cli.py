"""End-to-end CLI tests: ``python -m repro.analysis`` and ``repro check``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as repro_main

REPO = Path(__file__).resolve().parents[2]
BROKEN_FIXTURE = REPO / "tests" / "fixtures" / "broken_solution.json"


@pytest.fixture
def clean_module(tmp_path):
    mod = tmp_path / "clean.py"
    mod.write_text("from __future__ import annotations\n\nx = 1\n")
    return mod


@pytest.fixture
def dirty_module(tmp_path):
    mod = tmp_path / "dirty.py"
    mod.write_text(
        "from __future__ import annotations\n\nbad = cost == 1.5\n"
    )
    return mod


class TestLintMode:
    def test_clean_file_exits_zero(self, clean_module, capsys):
        assert analysis_main([str(clean_module)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_dirty_file_exits_one(self, dirty_module, capsys):
        assert analysis_main([str(dirty_module)]) == 1
        assert "LINT001" in capsys.readouterr().out

    def test_directory_recursion(self, clean_module, dirty_module, capsys):
        assert analysis_main([str(clean_module.parent)]) == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out

    def test_repro_source_tree_is_clean(self, capsys):
        pkg = Path(repro.__file__).parent
        assert analysis_main([str(pkg)]) == 0
        capsys.readouterr()

    def test_missing_lint_path_is_usage_error(self, capsys):
        assert analysis_main(["/nonexistent/mod.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, dirty_module, capsys):
        assert analysis_main(["--json", str(dirty_module)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["diagnostics"][0]["rule_id"] == "LINT001"


class TestListRules:
    def test_lists_every_rule(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("AD101", "AD205", "AD302", "AD403", "LINT005"):
            assert rule_id in out


class TestArtifactMode:
    def test_broken_fixture_fails_validation(self, capsys):
        assert BROKEN_FIXTURE.exists(), "regenerate via tools/make_broken_fixture.py"
        rc = analysis_main(
            [
                "--artifact", str(BROKEN_FIXTURE),
                "--model", "vgg19_bench",
                "--mesh", "2x2",
            ]
        )
        assert rc == 1
        assert "AD203" in capsys.readouterr().out

    def test_artifact_requires_model(self, capsys):
        assert analysis_main(["--artifact", str(BROKEN_FIXTURE)]) == 2
        capsys.readouterr()

    def test_unknown_model_is_usage_error(self, capsys):
        rc = analysis_main(
            ["--artifact", str(BROKEN_FIXTURE), "--model", "no_such_model"]
        )
        assert rc == 2
        assert "no_such_model" in capsys.readouterr().err

    def test_missing_artifact_file_is_usage_error(self, capsys):
        rc = analysis_main(
            ["--artifact", "/nonexistent/sol.json", "--model", "vgg19_bench"]
        )
        assert rc == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_non_solution_document_is_usage_error(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text('{"hello": 1}')
        rc = analysis_main(
            ["--artifact", str(junk), "--model", "vgg19_bench"]
        )
        assert rc == 2
        assert "not a solution document" in capsys.readouterr().err


class TestReproCheckSubcommand:
    def test_forwards_to_analysis(self, dirty_module, capsys):
        assert repro_main(["check", str(dirty_module)]) == 1
        assert "LINT001" in capsys.readouterr().out

    def test_list_rules_forwarded(self, capsys):
        assert repro_main(["check", "--list-rules"]) == 0
        assert "AD101" in capsys.readouterr().out

    def test_broken_artifact_forwarded(self, capsys):
        rc = repro_main(
            [
                "check",
                "--artifact", str(BROKEN_FIXTURE),
                "--model", "vgg19_bench",
                "--mesh", "2x2",
            ]
        )
        assert rc == 1
        capsys.readouterr()
