"""Shared fixtures for the static-analysis tests: tiny, corruptible DAGs."""

from __future__ import annotations

import copy

import pytest

from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import GraphBuilder
from repro.scheduling import schedule_greedy


def build_tiny_dag(batch: int = 1):
    """A 3-layer conv chain split into 2 atoms per layer (6 atoms/sample)."""
    b = GraphBuilder(name="tiny")
    x = b.input(8, 8, 4)
    c1 = b.conv(x, 8, kernel=3, name="c1")
    c2 = b.conv(c1, 8, kernel=3, name="c2")
    b.conv(c2, 8, kernel=1, name="c3")
    g = b.build()
    cm = EngineCostModel(EngineConfig(pe_rows=8, pe_cols=8), get_dataflow("kc"))
    tiling = uniform_tiling(g, TileSize(4, 8, 8, 8))
    return build_atomic_dag(g, tiling, cm, batch=batch)


@pytest.fixture
def tiny_dag():
    return build_tiny_dag()


@pytest.fixture
def tiny_solution():
    """(dag, schedule, placement) for the tiny chain on 2 engines."""
    dag = build_tiny_dag()
    schedule = schedule_greedy(dag, 2)
    placement = {}
    for rnd in schedule.rounds:
        for slot, a in enumerate(rnd.atom_indices):
            placement[a] = slot
    return dag, schedule, placement


def corrupted(dag):
    """Deep copy for in-place corruption without touching the original."""
    return copy.deepcopy(dag)
