"""Negative-path tests for the AD4xx buffering-feasibility rules.

Byte geometry of the tiny chain (see conftest): every atom output is
256 B; weight slices are 288 B (c1), 576 B (c2), 64 B (c3).  Capacities
below are chosen around those sizes to force each scenario.
"""

from __future__ import annotations

from repro.analysis import check_buffering
from repro.buffering import BufferPolicy
from repro.scheduling import Round, Schedule


def fired(dag, schedule, placement, capacity, **kw):
    return check_buffering(
        dag, schedule, placement, 2, capacity, **kw
    ).fired_rule_ids()


class TestCleanBuffering:
    def test_ample_capacity_is_clean(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        report = check_buffering(dag, schedule, placement, 2, 1 << 15)
        assert report.ok and not report.diagnostics


class TestAD403OversizedOutput:
    def test_output_larger_than_buffer(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        # 128 B buffers: every 256 B output with consumers (c1/c2 atoms)
        # can never be reused on-chip.  The only weight that still fits
        # (c3, 64 B) stores without eviction, so nothing else fires.
        report = check_buffering(dag, schedule, placement, 2, 128)
        assert report.fired_rule_ids() == {"AD403"}
        assert report.ok  # warnings only
        assert len(report.by_rule("AD403")) == 4


class _UnderFreeingPolicy(BufferPolicy):
    """A broken Algorithm 3 that never actually evicts anything."""

    def make_room(self, buffer, needed_bytes, t0):
        return []


class TestAD401CapacityOverflow:
    def test_under_freeing_policy_overflows(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        # 600 B: engine 0 stores the c1 weight slice (288 B, under the
        # 300 B weight limit) and c1_0's output (256 B); storing c2_0's
        # output then needs an eviction the broken policy refuses.
        report = check_buffering(
            dag,
            schedule,
            placement,
            2,
            600,
            policy=_UnderFreeingPolicy(dag, schedule),
        )
        assert report.fired_rule_ids() == {"AD401"}
        assert not report.ok

    def test_real_policy_is_not_blamed(self, tiny_solution):
        dag, schedule, placement = tiny_solution
        assert "AD401" not in fired(dag, schedule, placement, 600)


class TestAD402PrematureEviction:
    def test_eviction_of_entry_needed_this_round(self, tiny_dag):
        # Serialize the two c1 atoms onto engine 0.  When c1_1's output is
        # stored while provisioning round 2, the only evictable entry is
        # c1_0's output — whose consumers (the c2 atoms) run in round 2.
        # Algorithm 3 must evict it anyway (320 B cannot hold both 256 B
        # outputs) and the validator flags the same-Round DRAM round-trip.
        schedule = Schedule(
            rounds=[
                Round(0, (0,)),
                Round(1, (1,)),
                Round(2, (2, 3)),
                Round(3, (4, 5)),
            ]
        )
        placement = {0: 0, 1: 0, 2: 0, 3: 1, 4: 0, 5: 1}
        report = check_buffering(tiny_dag, schedule, placement, 2, 320)
        assert report.fired_rule_ids() == {"AD402"}
        assert report.ok  # warning only
        [diag] = report.by_rule("AD402")
        assert "round 2" in diag.message
