"""Tests for the staged search pipeline: determinism, dedup, selection."""

import pytest

from repro.atoms.atom import TileSize
from repro.atoms.generation import SAParams
from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model
from repro.pipeline import (
    CandidateTrace,
    SearchContext,
    select_best,
    tiling_fingerprint,
)


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


def run_search(model, arch, jobs, **overrides):
    options = OptimizerOptions(
        sa_params=SAParams(max_iterations=8),
        restarts=3,
        seed=11,
        jobs=jobs,
        **overrides,
    )
    return AtomicDataflowOptimizer(get_model(model), arch, options).optimize()


def decisions(outcome):
    """The jobs-invariant part of a trace (timings are per-process)."""
    return [
        (t.label, t.fingerprint, t.accepted, t.reason, t.total_cycles)
        for t in outcome.traces
    ]


class TestSeedDeterminism:
    @pytest.mark.parametrize("model", ["vgg19_bench", "mobilenet_v2_bench"])
    def test_jobs_do_not_change_the_answer(self, model, arch):
        serial = run_search(model, arch, jobs=1)
        parallel = run_search(model, arch, jobs=4)
        assert serial.result.total_cycles == parallel.result.total_cycles
        assert serial.placement == parallel.placement
        assert [r.atom_indices for r in serial.schedule.rounds] == [
            r.atom_indices for r in parallel.schedule.rounds
        ]
        assert decisions(serial) == decisions(parallel)

    def test_same_seed_same_outcome(self, arch):
        a = run_search("vgg19_bench", arch, jobs=1)
        b = run_search("vgg19_bench", arch, jobs=1)
        assert a.result.total_cycles == b.result.total_cycles
        assert decisions(a) == decisions(b)


class TestDedup:
    def test_duplicate_tilings_evaluated_once(self, arch):
        # "even" generation ignores the RNG, so every restart produces the
        # same tiling; dedup must evaluate the first and skip the rest.
        outcome = run_search(
            "vgg19_bench", arch, jobs=1, atom_generation="even"
        )
        traces = outcome.traces
        assert len(traces) == 3
        evaluated = [t for t in traces if t.evaluated]
        skipped = [t for t in traces if not t.evaluated]
        assert len(evaluated) == 1 and evaluated[0].label == "even[0]"
        assert evaluated[0].accepted
        for t in skipped:
            assert t.reason == "duplicate of even[0]"
            assert t.total_cycles is None
            assert t.fingerprint == evaluated[0].fingerprint

    def test_dedup_can_be_disabled(self, arch):
        outcome = run_search(
            "vgg19_bench", arch, jobs=1, atom_generation="even", dedup=False
        )
        assert all(t.evaluated for t in outcome.traces)

    def test_search_stats_count_dedup(self, arch):
        outcome = run_search(
            "vgg19_bench", arch, jobs=1, atom_generation="even"
        )
        stats = outcome.search_stats
        assert stats.candidates == 3
        assert stats.evaluated == 1
        assert stats.deduplicated == 2


class _FakeSolution:
    def __init__(self, cycles, fingerprint):
        class _R:
            total_cycles = cycles

        class _T:
            pass

        _T.fingerprint = fingerprint
        self.result = _R()
        self.trace = _T()


class TestSelection:
    def test_tie_broken_on_fingerprint_not_order(self):
        a = _FakeSolution(100, "aaaa")
        b = _FakeSolution(100, "bbbb")
        assert select_best([a, b]) == 0
        assert select_best([b, a]) == 1  # still picks "aaaa"

    def test_cycles_dominate_fingerprint(self):
        fast = _FakeSolution(50, "zzzz")
        slow = _FakeSolution(100, "aaaa")
        assert select_best([slow, fast]) == 1

    def test_deduplicated_slots_are_skipped(self):
        sol = _FakeSolution(100, "aaaa")
        assert select_best([None, sol, None]) == 1

    def test_no_evaluated_candidate_raises(self):
        with pytest.raises(ValueError):
            select_best([None, None])


class TestFingerprint:
    def test_canonical_tiling_clamps_like_dag_build(self, arch):
        ctx = SearchContext.create(get_model("vgg19_bench"), arch)
        oversized = {
            layer: TileSize(10**6, 10**6, 10**6, 10**6)
            for layer in ctx.canonical_tiling({})
        }
        fp_oversized = tiling_fingerprint(ctx.canonical_tiling(oversized))
        fp_full = tiling_fingerprint(ctx.canonical_tiling({}))
        assert fp_oversized == fp_full

    def test_distinct_tilings_distinct_fingerprints(self, arch):
        ctx = SearchContext.create(get_model("vgg19_bench"), arch)
        full = ctx.canonical_tiling({})
        halved = {
            layer: TileSize(max(1, t.h // 2), t.w, t.ci, t.co)
            for layer, t in full.items()
        }
        assert tiling_fingerprint(full) != tiling_fingerprint(halved)


class TestSearchContext:
    def test_simulator_reuses_shared_mesh(self, arch):
        ctx = SearchContext.create(get_model("vgg19_bench"), arch)
        tiling = ctx.canonical_tiling({})
        dag = ctx.build_dag(tiling)
        sim = ctx.simulator(dag)
        assert sim.mesh is ctx.mesh

    def test_accepted_trace_matches_result(self, arch):
        outcome = run_search("vgg19_bench", arch, jobs=1)
        accepted = [t for t in outcome.traces if t.accepted]
        assert len(accepted) == 1
        assert accepted[0].total_cycles == outcome.result.total_cycles


class TestKernelCounters:
    """The per-candidate cost-kernel accounting added with the SoA core."""

    def test_evaluated_traces_record_batch_activity(self, arch):
        outcome = run_search("vgg19_bench", arch, jobs=1)
        evaluated = [t for t in outcome.traces if t.evaluated]
        assert evaluated
        for t in evaluated:
            # Every evaluation prices at least its DAG's tile lattices
            # through the batched kernel.
            assert t.kernel_batch_calls > 0
            assert t.kernel_batch_rows >= t.kernel_batch_calls

    def test_counters_survive_dict_round_trip(self):
        trace = CandidateTrace(
            label="sa[0]", fingerprint="f",
            kernel_batch_calls=7, kernel_batch_rows=123,
        )
        doc = trace.to_dict()
        assert doc["cost_kernel"] == {"batch_calls": 7, "batch_rows": 123}
        back = CandidateTrace.from_dict(doc)
        assert back.kernel_batch_calls == 7
        assert back.kernel_batch_rows == 123

    def test_pre_refactor_documents_still_load(self):
        doc = CandidateTrace(label="x", fingerprint="f").to_dict()
        del doc["cost_kernel"]
        back = CandidateTrace.from_dict(doc)
        assert back.kernel_batch_calls == 0
        assert back.kernel_batch_rows == 0

    def test_validated_staged_run_agrees_with_array_costs(self, arch):
        """jobs=2 + validate=True: the AD2xx schedule-cost cross-checks
        re-derive round costs from the flat atom arrays and must agree."""
        outcome = run_search("vgg19_bench", arch, jobs=2, validate=True)
        reference = run_search("vgg19_bench", arch, jobs=1)
        assert outcome.result.total_cycles == reference.result.total_cycles
        assert decisions(outcome) == decisions(reference)


class TestOptions:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            OptimizerOptions(jobs=0)

    def test_trace_is_frozen(self):
        trace = CandidateTrace(label="x", fingerprint="f")
        with pytest.raises(AttributeError):
            trace.label = "y"
