"""Parallel-tempering tests: ladder construction, the determinism
contract (``jobs=1`` ≡ ``jobs=N``), resume across a swap boundary, and
the trace plumbing that carries rung/swap provenance to the caller."""

import json

import pytest

from repro.atoms.generation import SAParams
from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model
from repro.pipeline import CandidateTrace
from repro.search.tempering import (
    LADDER_RATIO,
    MOVE_FAMILIES,
    ExchangeRecord,
    TemperingPlan,
)


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


def run_search(model, arch, **overrides):
    settings = dict(
        sa_params=SAParams(max_iterations=12),
        rungs=3,
        exchange_every=4,
        seed=0,
    )
    settings.update(overrides)
    options = OptimizerOptions(**settings)
    return AtomicDataflowOptimizer(get_model(model), arch, options).optimize()


def decisions(outcome):
    return [
        (t.label, t.fingerprint, t.accepted, t.reason, t.total_cycles,
         t.rung, t.swaps_proposed, t.swaps_accepted)
        for t in outcome.traces
    ]


class TestPlan:
    def test_ladder_temperatures_and_portfolio(self):
        plan = TemperingPlan(
            rungs=4, base=SAParams(temperature=1.5), portfolio="mixed"
        )
        for k in range(4):
            p = plan.rung_params(k)
            assert p.temperature == pytest.approx(1.5 * LADDER_RATIO**k)
            assert p.schedule == ("exponential" if k % 2 == 0 else "linear")
            assert p.move_length_frac == pytest.approx(
                SAParams().move_length_frac * MOVE_FAMILIES[k % 3]
            )

    def test_pinned_portfolios(self):
        for portfolio in ("exponential", "linear"):
            plan = TemperingPlan(rungs=3, portfolio=portfolio)
            assert all(
                plan.rung_params(k).schedule == portfolio for k in range(3)
            )

    def test_segment_count_covers_iterations(self):
        plan = TemperingPlan(
            rungs=2, exchange_every=5, base=SAParams(max_iterations=12)
        )
        assert plan.segments == 3
        assert TemperingPlan(rungs=2, exchange_every=100).segments == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rungs=0),
            dict(rungs=2, exchange_every=0),
            dict(rungs=2, portfolio="adaptive"),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TemperingPlan(**kwargs)

    def test_exchange_record_roundtrip(self):
        rec = ExchangeRecord(
            seq=3, segment=1, lower=1, upper=2,
            energy_lower=0.25, energy_upper=0.5, accepted=True,
        )
        assert ExchangeRecord.from_dict(rec.to_dict()) == rec


class TestOptions:
    def test_rungs_require_sa(self):
        with pytest.raises(ValueError, match="sa"):
            OptimizerOptions(rungs=2, atom_generation="even")

    def test_rungs_exclude_restarts(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            OptimizerOptions(rungs=2, restarts=4)

    def test_bad_portfolio_rejected(self):
        with pytest.raises(ValueError, match="portfolio"):
            OptimizerOptions(rungs=2, portfolio="bogus")

    def test_trace_swaps_roundtrip(self):
        trace = CandidateTrace(
            label="pt[1]", fingerprint="f" * 16, accepted=False,
            reason="beaten", total_cycles=10,
            rung=1, swaps_proposed=3, swaps_accepted=2,
        )
        back = CandidateTrace.from_dict(trace.to_dict())
        assert (back.rung, back.swaps_proposed, back.swaps_accepted) == (1, 3, 2)

    def test_trace_parses_pre_tempering_docs(self):
        doc = CandidateTrace(
            label="sa[0]", fingerprint="f" * 16, accepted=True,
            reason="selected", total_cycles=10,
        ).to_dict()
        doc.pop("rung")
        doc.pop("swaps")
        back = CandidateTrace.from_dict(doc)
        assert back.rung is None
        assert (back.swaps_proposed, back.swaps_accepted) == (0, 0)


class TestTemperedSearch:
    def test_rung_provenance_on_traces(self, arch):
        outcome = run_search("vgg19_bench", arch)
        by_label = {t.label: t for t in outcome.traces}
        assert set(by_label) == {"pt[0]", "pt[1]", "pt[2]", "even-split"}
        for k in range(3):
            assert by_label[f"pt[{k}]"].rung == k
        assert by_label["even-split"].rung is None
        # Two exchange segments: rungs 0 and 2 join one proposal each,
        # the middle rung joins both.
        assert by_label["pt[1]"].swaps_proposed == 2
        assert sum(t.swaps_proposed for t in outcome.traces) == 4

    def test_jobs_do_not_change_decisions(self, arch):
        serial = run_search("vgg19_bench", arch, jobs=1)
        parallel = run_search("vgg19_bench", arch, jobs=2)
        assert decisions(parallel) == decisions(serial)
        assert parallel.result.total_cycles == serial.result.total_cycles
        assert parallel.result.to_dict() == serial.result.to_dict()

    def test_resume_across_swap_boundary(self, arch, tmp_path):
        baseline = run_search("vgg19_bench", arch)

        journal = tmp_path / "pt.jsonl"
        full = run_search("vgg19_bench", arch, checkpoint=str(journal))
        assert decisions(full) == decisions(baseline)

        lines = journal.read_text().splitlines()
        keep = None
        for i, line in enumerate(lines):
            doc = json.loads(line)
            if doc.get("kind") == "pt-segment" and any(
                e["accepted"] for e in doc["exchanges"]
            ):
                keep = i
                break
        assert keep is not None, "no accepted swap; pick hotter params"
        journal.write_text("\n".join(lines[: keep + 1]) + "\n")

        resumed = run_search(
            "vgg19_bench", arch, checkpoint=str(journal), resume=True
        )
        assert decisions(resumed) == decisions(baseline)
        assert resumed.result.to_dict() == baseline.result.to_dict()

    def test_resume_with_complete_journal_restores_everything(
        self, arch, tmp_path
    ):
        journal = tmp_path / "pt.jsonl"
        full = run_search("vgg19_bench", arch, checkpoint=str(journal))
        resumed = run_search(
            "vgg19_bench", arch, checkpoint=str(journal), resume=True
        )
        assert decisions(resumed) == decisions(full)
        restored = [t for t in resumed.traces if t.restored]
        assert restored, "completed candidates must restore from journal"

    def test_corrupt_segment_record_costs_work_not_correctness(
        self, arch, tmp_path
    ):
        baseline = run_search("vgg19_bench", arch)
        journal = tmp_path / "pt.jsonl"
        run_search("vgg19_bench", arch, checkpoint=str(journal))

        lines = journal.read_text().splitlines()
        mangled = []
        for line in lines:
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                mangled.append(line)
                continue
            label = doc.get("label", "")
            if doc.get("kind") != "pt-segment" and label.startswith("pt["):
                continue  # force the rungs to re-run from segment records
            if doc.get("kind") == "pt-segment" and doc["segment"] == 0:
                doc["rungs"] = 99  # poison the prefix root
            mangled.append(json.dumps(doc))
        journal.write_text("\n".join(mangled) + "\n")

        resumed = run_search(
            "vgg19_bench", arch, checkpoint=str(journal), resume=True
        )
        assert decisions(resumed) == decisions(baseline)
