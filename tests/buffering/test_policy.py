"""Tests for the Algorithm 3 buffering strategy."""

import pytest

from repro.buffering import BufferPolicy, weight_entry_key
from repro.memory import EngineBuffer
from repro.scheduling import schedule_greedy


@pytest.fixture
def policy(chain_dag):
    schedule = schedule_greedy(chain_dag, 4)
    return BufferPolicy(chain_dag, schedule), schedule


class TestNextUse:
    def test_atom_next_use_is_first_consumer_round(self, chain_dag, policy):
        pol, schedule = policy
        atom_round = schedule.atom_round()
        for a in range(chain_dag.num_atoms):
            if not chain_dag.succs[a]:
                continue
            expected = min(atom_round[s] for s in chain_dag.succs[a])
            assert pol.next_use(a, 0) == expected

    def test_next_use_respects_t0(self, chain_dag, policy):
        pol, schedule = policy
        atom_round = schedule.atom_round()
        a = next(i for i in range(chain_dag.num_atoms) if chain_dag.succs[i])
        last = max(atom_round[s] for s in chain_dag.succs[a])
        assert pol.next_use(a, last + 1) is None

    def test_sink_atom_never_used(self, chain_dag, policy):
        pol, _ = policy
        sink = next(
            i for i in range(chain_dag.num_atoms) if not chain_dag.succs[i]
        )
        assert pol.next_use(sink, 0) is None

    def test_weight_next_use(self, chain_dag, policy):
        pol, schedule = policy
        atom_round = schedule.atom_round()
        a = 0
        wk = chain_dag.weight_key(a)
        assert wk is not None
        users = [
            atom_round[i]
            for i in range(chain_dag.num_atoms)
            if chain_dag.weight_key(i) == wk
        ]
        assert pol.next_use(weight_entry_key(*wk), 0) == min(users)


class TestReleaseDead:
    def test_dead_entries_released_without_writeback(self, chain_dag, policy):
        pol, _ = policy
        buf = EngineBuffer(capacity_bytes=10_000)
        sink = next(
            i for i in range(chain_dag.num_atoms) if not chain_dag.succs[i]
        )
        buf.store(sink, 100)
        evs = pol.release_dead(buf, t0=0)
        assert [e.key for e in evs] == [sink]
        assert evs[0].writeback_bytes == 0
        assert not buf.contains(sink)

    def test_live_entries_kept(self, chain_dag, policy):
        pol, _ = policy
        buf = EngineBuffer(capacity_bytes=10_000)
        live = next(i for i in range(chain_dag.num_atoms) if chain_dag.succs[i])
        buf.store(live, 100)
        assert pol.release_dead(buf, t0=0) == []
        assert buf.contains(live)


class TestChooseVictim:
    def test_picks_max_invalid_occupation(self, chain_dag, policy):
        pol, schedule = policy
        atom_round = schedule.atom_round()
        live = [
            i
            for i in range(chain_dag.num_atoms)
            if chain_dag.succs[i] and atom_round[i] == 0
        ]
        assert len(live) >= 2
        buf = EngineBuffer(capacity_bytes=10**6)
        # Same size: the one reused latest is the worst occupant.
        for a in live[:2]:
            buf.store(a, 500)
        expected = max(live[:2], key=lambda a: pol.next_use(a, 1))
        ev = pol.choose_victim(buf, t0=1)
        assert ev.key == expected
        assert ev.writeback_bytes == 500

    def test_size_dominates_when_wait_equal(self, chain_dag, policy):
        pol, _ = policy
        a = next(i for i in range(chain_dag.num_atoms) if chain_dag.succs[i])
        buf = EngineBuffer(capacity_bytes=10**6)
        buf.store(a, 100)
        buf.store(("w", 99, 0), 10_000)  # never-used weight: huge occupation
        ev = pol.choose_victim(buf, t0=0)
        assert ev.key == ("w", 99, 0)
        assert ev.writeback_bytes == 0  # weights are clean

    def test_empty_buffer_returns_none(self, chain_dag, policy):
        pol, _ = policy
        assert pol.choose_victim(EngineBuffer(capacity_bytes=10), 0) is None


class TestMakeRoom:
    def test_noop_when_fits(self, chain_dag, policy):
        pol, _ = policy
        buf = EngineBuffer(capacity_bytes=1000)
        assert pol.make_room(buf, 500, 0) == []

    def test_evicts_until_fit(self, chain_dag, policy):
        pol, schedule = policy
        atom_round = schedule.atom_round()
        live = [
            i
            for i in range(chain_dag.num_atoms)
            if chain_dag.succs[i] and atom_round[i] == 0
        ][:2]
        buf = EngineBuffer(capacity_bytes=1000)
        for a in live:
            buf.store(a, 400)
        evs = pol.make_room(buf, 500, t0=1)
        assert evs
        assert buf.fits(500)

    def test_impossible_request_rejected(self, chain_dag, policy):
        pol, _ = policy
        buf = EngineBuffer(capacity_bytes=100)
        with pytest.raises(ValueError):
            pol.make_room(buf, 200, 0)
