"""Tests for the torus interconnect."""

import pytest

from repro.noc import Mesh2D, Torus2D, make_topology


class TestTorusDistance:
    def test_wraparound_shortens(self):
        t = Torus2D(4, 4)
        m = Mesh2D(4, 4)
        # Corner to corner: mesh 6 hops, torus 2 (one wrap per axis).
        assert m.hop_distance(0, 15) == 6
        assert t.hop_distance(0, 15) == 2

    def test_never_longer_than_mesh(self):
        t, m = Torus2D(4, 5), Mesh2D(4, 5)
        for a in range(20):
            for b in range(20):
                assert t.hop_distance(a, b) <= m.hop_distance(a, b)

    def test_metric_axioms(self):
        t = Torus2D(3, 4)
        for a in range(12):
            assert t.hop_distance(a, a) == 0
            for b in range(12):
                assert t.hop_distance(a, b) == t.hop_distance(b, a)
                for c in range(12):
                    assert (
                        t.hop_distance(a, c)
                        <= t.hop_distance(a, b) + t.hop_distance(b, c)
                    )

    def test_max_distance_is_half_dims(self):
        t = Torus2D(4, 4)
        worst = max(
            t.hop_distance(a, b) for a in range(16) for b in range(16)
        )
        assert worst == 4  # rows/2 + cols/2


class TestTorusRouting:
    def test_route_length_equals_distance(self):
        t = Torus2D(4, 4)
        for a in range(16):
            for b in range(16):
                assert len(t.route(a, b)) == t.hop_distance(a, b)

    def test_wrap_links_used(self):
        t = Torus2D(4, 4)
        route = t.route(0, 3)  # one wrap hop west: (0,0)->(0,3)
        assert route == ((0, 3),)

    def test_links_are_torus_adjacent(self):
        t = Torus2D(3, 5)
        for src, dst in ((0, 14), (7, 2), (10, 1)):
            for u, v in t.route(src, dst):
                assert t.hop_distance(u, v) == 1


class TestFactory:
    def test_make_topology(self):
        assert isinstance(make_topology(2, 2, "mesh"), Mesh2D)
        assert isinstance(make_topology(2, 2, "torus"), Torus2D)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_topology(2, 2, "hypercube")


class TestEndToEnd:
    def test_torus_arch_simulates(self):
        from dataclasses import replace

        from repro.atoms.generation import SAParams
        from repro.config import ArchConfig, NocConfig
        from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
        from repro.models import vgg19

        g = vgg19(input_size=32, width_mult=0.25)
        mesh_arch = ArchConfig(mesh_rows=2, mesh_cols=2)
        torus_arch = replace(mesh_arch, noc=NocConfig(topology="torus"))
        opts = OptimizerOptions(
            scheduler="greedy", sa_params=SAParams(max_iterations=10)
        )
        rm = AtomicDataflowOptimizer(g, mesh_arch, opts).optimize().result
        rt = AtomicDataflowOptimizer(g, torus_arch, opts).optimize().result
        assert rt.total_cycles > 0
        # Wraparound can only shorten transfers.
        assert rt.noc_bytes_hops <= rm.noc_bytes_hops

    def test_invalid_topology_in_config(self):
        from repro.config import NocConfig

        with pytest.raises(ValueError):
            NocConfig(topology="ring")
