"""Tests for the contention-aware NoC traffic model."""

import pytest

from repro.config import EnergyConfig, NocConfig
from repro.noc import Mesh2D, NocModel, Transfer


@pytest.fixture
def noc():
    return NocModel(
        Mesh2D(4, 4),
        NocConfig(hop_cycles=1, link_bits=64, router_overhead_cycles=2),
        EnergyConfig(noc_pj_per_bit_hop=0.61),
    )


class TestSingleTransfer:
    def test_latency_components(self, noc):
        # 64 B over 3 hops on a 64 b link: 2 + 3 + 8 cycles.
        t = Transfer(src=0, dst=3, size_bytes=64)
        assert noc.transfer_cycles(t) == 2 + 3 + 8

    def test_local_transfer_free(self, noc):
        assert noc.transfer_cycles(Transfer(src=5, dst=5, size_bytes=1000)) == 0

    def test_zero_bytes_free(self, noc):
        assert noc.transfer_cycles(Transfer(src=0, dst=1, size_bytes=0)) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Transfer(src=0, dst=1, size_bytes=-1)


class TestRoundCost:
    def test_disjoint_transfers_run_in_parallel(self, noc):
        # 0->1 and 14->15 share no link: cost = one transfer's latency.
        ts = [Transfer(0, 1, 64), Transfer(14, 15, 64)]
        cost = noc.round_cost(ts)
        assert cost.cycles == noc.transfer_cycles(ts[0])

    def test_shared_link_serializes(self, noc):
        # Both flows cross the (0,1) link east: occupancy adds up.
        ts = [Transfer(0, 1, 640), Transfer(0, 2, 640)]
        cost = noc.round_cost(ts)
        assert cost.busiest_link_cycles == 2 * 80
        assert cost.cycles >= 160

    def test_energy_proportional_to_bit_hops(self, noc):
        ts = [Transfer(0, 3, 100)]  # 3 hops
        cost = noc.round_cost(ts)
        assert cost.energy_pj == pytest.approx(8 * 100 * 3 * 0.61)
        assert cost.total_hop_bits == 8 * 100 * 3

    def test_empty_round_free(self, noc):
        cost = noc.round_cost([])
        assert cost.cycles == 0 and cost.energy_pj == 0.0

    def test_local_transfers_ignored(self, noc):
        cost = noc.round_cost([Transfer(4, 4, 10_000)])
        assert cost.cycles == 0 and cost.total_hop_bits == 0
