"""Tests for the contention-aware NoC traffic model."""

import math
import random
from collections import defaultdict

import pytest

from repro.config import EnergyConfig, NocConfig
from repro.noc import Mesh2D, NocModel, NocRoundCost, Torus2D, Transfer


@pytest.fixture
def noc():
    return NocModel(
        Mesh2D(4, 4),
        NocConfig(hop_cycles=1, link_bits=64, router_overhead_cycles=2),
        EnergyConfig(noc_pj_per_bit_hop=0.61),
    )


class TestSingleTransfer:
    def test_latency_components(self, noc):
        # 64 B over 3 hops on a 64 b link: 2 + 3 + 8 cycles.
        t = Transfer(src=0, dst=3, size_bytes=64)
        assert noc.transfer_cycles(t) == 2 + 3 + 8

    def test_local_transfer_free(self, noc):
        assert noc.transfer_cycles(Transfer(src=5, dst=5, size_bytes=1000)) == 0

    def test_zero_bytes_free(self, noc):
        assert noc.transfer_cycles(Transfer(src=0, dst=1, size_bytes=0)) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Transfer(src=0, dst=1, size_bytes=-1)


class TestRoundCost:
    def test_disjoint_transfers_run_in_parallel(self, noc):
        # 0->1 and 14->15 share no link: cost = one transfer's latency.
        ts = [Transfer(0, 1, 64), Transfer(14, 15, 64)]
        cost = noc.round_cost(ts)
        assert cost.cycles == noc.transfer_cycles(ts[0])

    def test_shared_link_serializes(self, noc):
        # Both flows cross the (0,1) link east: occupancy adds up.
        ts = [Transfer(0, 1, 640), Transfer(0, 2, 640)]
        cost = noc.round_cost(ts)
        assert cost.busiest_link_cycles == 2 * 80
        assert cost.cycles >= 160

    def test_energy_proportional_to_bit_hops(self, noc):
        ts = [Transfer(0, 3, 100)]  # 3 hops
        cost = noc.round_cost(ts)
        assert cost.energy_pj == pytest.approx(8 * 100 * 3 * 0.61)
        assert cost.total_hop_bits == 8 * 100 * 3

    def test_empty_round_free(self, noc):
        cost = noc.round_cost([])
        assert cost.cycles == 0 and cost.energy_pj == 0.0

    def test_local_transfers_ignored(self, noc):
        cost = noc.round_cost([Transfer(4, 4, 10_000)])
        assert cost.cycles == 0 and cost.total_hop_bits == 0


def _reference_round_cost(model: NocModel, transfers) -> NocRoundCost:
    """The pre-vectorization per-transfer walk, kept as the golden oracle.

    Serialization is ``math.ceil`` of a float quotient, occupancy is a
    per-link dict over ``mesh.route``, hop-bits use the route *length*
    (not the hop distance — they differ if a routing scheme ever takes a
    non-minimal path), and energy accumulates sequentially in transfer
    order.  The vectorized :meth:`NocModel.round_cost` must match all
    four fields exactly, floats included.
    """
    link_occupancy: dict[tuple[int, int], int] = defaultdict(int)
    max_single = 0
    total_hop_bits = 0
    energy_pj = 0.0
    for t in transfers:
        if t.src == t.dst or t.size_bytes == 0:
            continue
        max_single = max(max_single, model.transfer_cycles(t))
        serialization = math.ceil(8 * t.size_bytes / model.config.link_bits)
        route = model.mesh.route(t.src, t.dst)
        for link in route:
            link_occupancy[link] += serialization
        bits = 8 * t.size_bytes
        total_hop_bits += bits * len(route)
        energy_pj += bits * len(route) * model.energy.noc_pj_per_bit_hop
    busiest = max(link_occupancy.values(), default=0)
    return NocRoundCost(
        cycles=max(max_single, busiest),
        energy_pj=energy_pj,
        total_hop_bits=total_hop_bits,
        busiest_link_cycles=busiest,
    )


class TestVectorizedRoundCostEquivalence:
    """Bit-identical contract of the batched round_cost."""

    @pytest.mark.parametrize("mesh", [Mesh2D(4, 4), Torus2D(4, 4)])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_batches_match_scalar_reference(self, mesh, seed):
        model = NocModel(mesh, NocConfig(), EnergyConfig())
        rng = random.Random(seed)
        n = mesh.num_engines
        transfers = [
            Transfer(
                src=rng.randrange(n),
                dst=rng.randrange(n),  # may equal src: must be filtered
                size_bytes=rng.choice(
                    [0, 1, 7, 63, 64, 65, rng.randrange(1, 100_000)]
                ),
            )
            for _ in range(rng.randrange(1, 40))
        ]
        assert model.round_cost(transfers) == _reference_round_cost(
            model, transfers
        )

    @pytest.mark.parametrize("mesh", [Mesh2D(4, 4), Torus2D(4, 4)])
    def test_degenerate_batches_match_scalar_reference(self, mesh):
        model = NocModel(mesh, NocConfig(), EnergyConfig())
        for transfers in (
            [],
            [Transfer(3, 3, 500)],  # local only
            [Transfer(0, 1, 0)],  # empty payload only
            [Transfer(2, 2, 0), Transfer(1, 1, 9)],
        ):
            assert model.round_cost(transfers) == _reference_round_cost(
                model, transfers
            )

    def test_torus_wraparound_differs_from_mesh(self):
        """Sanity: the caches are per-topology, not shared across classes."""
        t = Transfer(0, 3, 64)  # corner-to-corner in a 4-wide row
        mesh_cost = NocModel(
            Mesh2D(4, 4), NocConfig(), EnergyConfig()
        ).round_cost([t])
        torus_cost = NocModel(
            Torus2D(4, 4), NocConfig(), EnergyConfig()
        ).round_cost([t])
        assert torus_cost.total_hop_bits < mesh_cost.total_hop_bits
