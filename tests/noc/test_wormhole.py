"""Tests for the flit-level wormhole NoC simulator."""

import pytest

from repro.config import ArchConfig, NocConfig
from repro.noc import Mesh2D, NocModel, Transfer, WormholeSimulator


@pytest.fixture
def mesh():
    return Mesh2D(4, 4)


@pytest.fixture
def sim(mesh):
    return WormholeSimulator(
        mesh, NocConfig(hop_cycles=1, link_bits=64, router_overhead_cycles=2)
    )


class TestSinglePacket:
    def test_uncontended_latency(self, sim):
        # 64 B = 8 flits over 3 hops: 2 (router) + 3 (hops) + 8 (flits).
        res = sim.simulate([Transfer(0, 3, 64)])
        assert res.makespan == 2 + 3 + 8
        assert res.packets[0].latency == res.makespan

    def test_local_packet_free(self, sim):
        res = sim.simulate([Transfer(5, 5, 4096)])
        assert res.makespan == 0

    def test_empty_batch(self, sim):
        assert sim.simulate([]).makespan == 0

    def test_head_precedes_tail(self, sim):
        res = sim.simulate([Transfer(0, 15, 640)])
        p = res.packets[0]
        assert p.head_arrival < p.tail_arrival
        assert p.tail_arrival - p.head_arrival == 80  # flit count


class TestContention:
    def test_shared_link_serializes(self, sim):
        # Both packets leave engine 0 eastward: second head waits for the
        # first tail on link (0, 1).
        ts = [Transfer(0, 1, 640), Transfer(0, 2, 640)]
        res = sim.simulate(ts)
        lat = sorted(p.tail_arrival for p in res.packets)
        assert lat[1] >= lat[0] + 80  # serialized behind 80 flits

    def test_disjoint_routes_parallel(self, sim):
        ts = [Transfer(0, 1, 640), Transfer(14, 15, 640)]
        res = sim.simulate(ts)
        solo = sim.simulate([ts[0]]).makespan
        assert res.makespan == solo

    def test_start_times_offset(self, sim):
        ts = [Transfer(0, 1, 64), Transfer(0, 1, 64)]
        res = sim.simulate(ts, start_times=[0, 100])
        assert max(p.tail_arrival for p in res.packets) >= 100

    def test_start_times_length_checked(self, sim):
        with pytest.raises(ValueError):
            sim.simulate([Transfer(0, 1, 64)], start_times=[0, 1])

    def test_link_busy_accounting(self, sim, mesh):
        ts = [Transfer(0, 3, 64)]
        res = sim.simulate(ts)
        assert set(res.link_busy_cycles) == set(mesh.route(0, 3))
        assert res.busiest_link_cycles == 8


class TestAgainstAnalyticalModel:
    """The analytical Round bound must stay a lower bound on wormhole time
    and within a modest factor of it for realistic batches."""

    @pytest.mark.parametrize("pattern", ["fanout", "fanin", "shift", "mixed"])
    def test_bound_holds(self, mesh, pattern):
        cfg = NocConfig()
        analytical = NocModel(mesh, cfg, ArchConfig().energy)
        wormhole = WormholeSimulator(mesh, cfg)
        n = mesh.num_engines
        if pattern == "fanout":
            ts = [Transfer(0, d, 256) for d in range(1, n)]
        elif pattern == "fanin":
            ts = [Transfer(s, 0, 256) for s in range(1, n)]
        elif pattern == "shift":
            ts = [Transfer(i, (i + 1) % n, 256) for i in range(n)]
        else:
            ts = [Transfer(i, (i * 7 + 3) % n, 128 + 64 * i) for i in range(n)]
        bound = analytical.round_cost(ts).cycles
        exact = wormhole.simulate(ts).makespan
        assert bound <= exact
        assert exact <= 4 * bound + 64  # the bound is reasonably tight


class TestSimulatorIntegration:
    def test_wormhole_mode_runs_and_is_slower_or_equal(
        self, small_arch, chain_dag
    ):
        from repro.mapping import optimized_placement
        from repro.scheduling import schedule_greedy
        from repro.sim import SystemSimulator

        schedule = schedule_greedy(chain_dag, small_arch.num_engines)
        placement = optimized_placement(
            chain_dag, Mesh2D(small_arch.mesh_rows, small_arch.mesh_cols),
            schedule,
        )
        analytical = SystemSimulator(small_arch, chain_dag).run(
            schedule, placement
        )
        wormhole = SystemSimulator(
            small_arch, chain_dag, noc_mode="wormhole"
        ).run(schedule, placement)
        assert wormhole.total_cycles >= analytical.total_cycles
        # Same compute and traffic; only NoC timing differs.
        assert wormhole.compute_cycles == analytical.compute_cycles
        assert wormhole.dram_bytes_read == analytical.dram_bytes_read

    def test_unknown_mode_rejected(self, small_arch, chain_dag):
        from repro.sim import SystemSimulator

        with pytest.raises(ValueError, match="noc_mode"):
            SystemSimulator(small_arch, chain_dag, noc_mode="optical")
