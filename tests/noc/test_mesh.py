"""Tests for the 2D-mesh topology and XY routing."""

import pytest

from repro.noc import Mesh2D


class TestCoordinates:
    def test_row_major_indexing(self):
        m = Mesh2D(3, 4)
        assert m.coords(0) == (0, 0)
        assert m.coords(5) == (1, 1)
        assert m.engine_at(2, 3) == 11

    def test_out_of_range_rejected(self):
        m = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            m.coords(4)
        with pytest.raises(ValueError):
            m.engine_at(2, 0)


class TestDistance:
    def test_manhattan(self):
        m = Mesh2D(4, 4)
        assert m.hop_distance(0, 15) == 6  # (0,0) -> (3,3)
        assert m.hop_distance(0, 3) == 3
        assert m.hop_distance(5, 5) == 0

    def test_symmetric(self):
        m = Mesh2D(3, 5)
        for a in range(m.num_engines):
            for b in range(m.num_engines):
                assert m.hop_distance(a, b) == m.hop_distance(b, a)

    def test_triangle_inequality(self):
        m = Mesh2D(3, 3)
        for a in range(9):
            for b in range(9):
                for c in range(9):
                    assert (
                        m.hop_distance(a, c)
                        <= m.hop_distance(a, b) + m.hop_distance(b, c)
                    )

    def test_distance_matrix_matches_pairwise(self):
        m = Mesh2D(2, 3)
        mat = m.distance_matrix()
        for a in range(6):
            for b in range(6):
                assert mat[a][b] == m.hop_distance(a, b)


class TestRouting:
    def test_x_first_then_y(self):
        m = Mesh2D(3, 3)
        route = m.route(0, 8)  # (0,0) -> (2,2)
        assert route == ((0, 1), (1, 2), (2, 5), (5, 8))

    def test_route_length_equals_distance(self):
        m = Mesh2D(4, 4)
        for a in range(16):
            for b in range(16):
                assert len(m.route(a, b)) == m.hop_distance(a, b)

    def test_route_links_are_adjacent(self):
        m = Mesh2D(3, 4)
        for src, dst in ((0, 11), (7, 2), (10, 1)):
            for u, v in m.route(src, dst):
                assert m.hop_distance(u, v) == 1

    def test_self_route_empty(self):
        assert Mesh2D(2, 2).route(3, 3) == ()


class TestZigzag:
    def test_boustrophedon_order(self):
        m = Mesh2D(3, 3)
        assert m.zigzag_order() == (0, 1, 2, 5, 4, 3, 6, 7, 8)

    def test_permutation_of_all_engines(self):
        m = Mesh2D(4, 5)
        assert sorted(m.zigzag_order()) == list(range(20))

    def test_consecutive_slots_adjacent(self):
        m = Mesh2D(4, 4)
        order = m.zigzag_order()
        for a, b in zip(order, order[1:]):
            assert m.hop_distance(a, b) == 1
