"""Shared fixtures: small graphs, architectures, cost models."""

from __future__ import annotations

import pytest

from repro.atoms import TileSize, build_atomic_dag, uniform_tiling
from repro.config import ArchConfig, EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import GraphBuilder


@pytest.fixture
def small_arch() -> ArchConfig:
    """A 2x2-engine machine with 8x8 PE arrays — fast to simulate."""
    return ArchConfig(
        mesh_rows=2,
        mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024),
    )


@pytest.fixture
def default_arch() -> ArchConfig:
    """The paper's 8x8-engine platform."""
    return ArchConfig()


@pytest.fixture
def kc_model(small_arch) -> EngineCostModel:
    return EngineCostModel(small_arch.engine, get_dataflow("kc"))


@pytest.fixture
def yx_model(small_arch) -> EngineCostModel:
    return EngineCostModel(small_arch.engine, get_dataflow("yx"))


@pytest.fixture
def chain_graph():
    """input -> conv -> relu -> conv -> relu: a linear (VGG-like) chain."""
    b = GraphBuilder(name="chain")
    x = b.input(16, 16, 8)
    x = b.conv_bn_relu(x, 8, kernel=3, name="c1")
    x = b.conv_bn_relu(x, 8, kernel=3, name="c2")
    return b.build()


@pytest.fixture
def residual_graph():
    """A minimal residual-bypass block (ResNet-like)."""
    b = GraphBuilder(name="residual")
    x = b.input(16, 16, 8)
    y = b.conv_bn_relu(x, 8, kernel=3, name="c1")
    y = b.conv(y, 8, kernel=3, name="c2")
    s = b.conv(x, 8, kernel=1, name="proj")
    y = b.add(y, s, name="join")
    y = b.relu(y, name="out")
    return b.build()


@pytest.fixture
def branching_graph():
    """A two-branch concat cell (Inception-like)."""
    b = GraphBuilder(name="branching")
    x = b.input(8, 8, 8)
    b1 = b.conv(x, 8, kernel=1, name="b1")
    b2 = b.conv(x, 8, kernel=3, name="b2")
    y = b.concat(b1, b2, name="join")
    y = b.conv(y, 8, kernel=1, name="tail")
    return b.build()


@pytest.fixture
def chain_dag(chain_graph, kc_model):
    """Atomic DAG of the chain graph with 4x4 tiles (fused first)."""
    from repro.ir.transforms import fuse_elementwise

    fused = fuse_elementwise(chain_graph).graph
    tiling = uniform_tiling(fused, TileSize(8, 8, 8, 8))
    return build_atomic_dag(fused, tiling, kc_model, batch=1)
