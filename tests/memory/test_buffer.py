"""Tests for the per-engine SRAM buffer."""

import pytest

from repro.memory import BufferOverflowError, EngineBuffer, make_buffers


class TestStoreRelease:
    def test_store_and_query(self):
        b = EngineBuffer(capacity_bytes=1000)
        b.store("a", 300)
        assert b.contains("a")
        assert b.size_of("a") == 300
        assert b.used_bytes == 300
        assert b.free_bytes == 700

    def test_release_returns_size(self):
        b = EngineBuffer(capacity_bytes=1000)
        b.store("a", 300)
        assert b.release("a") == 300
        assert not b.contains("a")

    def test_release_missing_raises(self):
        b = EngineBuffer(capacity_bytes=1000)
        with pytest.raises(KeyError):
            b.release("ghost")

    def test_release_if_present(self):
        b = EngineBuffer(capacity_bytes=1000)
        assert b.release_if_present("ghost") == 0
        b.store("a", 10)
        assert b.release_if_present("a") == 10

    def test_restore_replaces_size(self):
        b = EngineBuffer(capacity_bytes=1000)
        b.store("a", 300)
        b.store("a", 500)
        assert b.used_bytes == 500

    def test_clear(self):
        b = EngineBuffer(capacity_bytes=100)
        b.store("a", 50)
        b.clear()
        assert b.used_bytes == 0


class TestCapacity:
    def test_overflow_raises(self):
        b = EngineBuffer(capacity_bytes=100)
        b.store("a", 80)
        with pytest.raises(BufferOverflowError):
            b.store("b", 30)
        assert not b.contains("b")

    def test_entry_larger_than_buffer_rejected(self):
        b = EngineBuffer(capacity_bytes=100)
        with pytest.raises(ValueError):
            b.store("a", 101)

    def test_exact_fit_allowed(self):
        b = EngineBuffer(capacity_bytes=100)
        b.store("a", 100)
        assert b.free_bytes == 0

    def test_fits(self):
        b = EngineBuffer(capacity_bytes=100)
        b.store("a", 60)
        assert b.fits(40) and not b.fits(41)

    def test_non_positive_sizes_rejected(self):
        b = EngineBuffer(capacity_bytes=100)
        with pytest.raises(ValueError):
            b.store("a", 0)


class TestMakeBuffers:
    def test_creates_indexed_buffers(self):
        bufs = make_buffers(4, 1024)
        assert len(bufs) == 4
        assert [b.engine_index for b in bufs] == [0, 1, 2, 3]
        assert all(b.capacity_bytes == 1024 for b in bufs)

    def test_buffers_independent(self):
        bufs = make_buffers(2, 100)
        bufs[0].store("a", 50)
        assert not bufs[1].contains("a")
