"""Tests for the HBM bandwidth/latency model."""

import pytest

from repro.config import EnergyConfig, HbmConfig
from repro.memory import HbmModel


@pytest.fixture
def hbm():
    return HbmModel(
        HbmConfig(
            peak_bandwidth_bytes_per_s=128e9,
            access_latency_ns=100.0,
            burst_bytes=64,
        ),
        EnergyConfig(hbm_pj_per_bit=7.0),
        engine_frequency_hz=500e6,
    )


class TestAccess:
    def test_latency_floor(self, hbm):
        # 100 ns at 500 MHz = 50 cycles, plus a negligible transfer term.
        cost = hbm.access(64)
        assert cost.cycles == pytest.approx(51, abs=1)

    def test_bandwidth_bound_for_large_transfers(self, hbm):
        mb = 1 << 20
        cost = hbm.access(mb)
        # 1 MiB / 128 GB/s = 8.19 us = ~4096 cycles; latency is minor.
        assert 4000 <= cost.cycles <= 4250

    def test_burst_rounding(self, hbm):
        assert hbm.access(1).bytes_moved == 64
        assert hbm.access(65).bytes_moved == 128

    def test_energy_per_bit(self, hbm):
        cost = hbm.access(64)
        assert cost.energy_pj == pytest.approx(8 * 64 * 7.0)

    def test_zero_access_free(self, hbm):
        cost = hbm.access(0)
        assert cost.cycles == 0 and cost.bytes_moved == 0

    def test_negative_rejected(self, hbm):
        with pytest.raises(ValueError):
            hbm.access(-1)


class TestStatistics:
    def test_read_write_counters(self, hbm):
        hbm.access(64)
        hbm.access(128, write=True)
        assert hbm.total_bytes_read == 64
        assert hbm.total_bytes_written == 128

    def test_reset(self, hbm):
        hbm.access(64)
        hbm.reset_stats()
        assert hbm.total_bytes_read == 0


class TestBatch:
    def test_batch_charges_latency_once(self, hbm):
        single = hbm.access(64).cycles
        batch = hbm.batch_cycles(64 * 10, num_requests=10)
        assert batch < 10 * single

    def test_empty_batch_free(self, hbm):
        assert hbm.batch_cycles(0, 0) == 0
