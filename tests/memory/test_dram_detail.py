"""Tests for the bank-level DRAM model and HBM calibration."""

import pytest

from repro.memory.dram_detail import (
    DetailedDram,
    DramGeometry,
    DramTimings,
    Request,
    calibrate_hbm,
    scattered_trace,
    streaming_trace,
)


@pytest.fixture
def dram():
    return DetailedDram()


class TestAddressMapping:
    def test_consecutive_bursts_interleave_channels(self, dram):
        channels = [dram._map(i)[0] for i in range(dram.geometry.channels)]
        assert channels == list(range(dram.geometry.channels))

    def test_rows_advance_within_channel(self, dram):
        g = dram.geometry
        bursts_per_row = g.row_bytes // g.burst_bytes
        # Burst N*channels*bursts_per_row on channel 0 starts a new row.
        c0, b0, r0 = dram._map(0)
        c1, b1, r1 = dram._map(g.channels * bursts_per_row)
        assert c0 == c1 == 0
        assert (b0, r0) != (b1, r1)


class TestRowBuffer:
    def test_second_access_same_row_hits(self, dram):
        res = dram.process([Request(0, 32), Request(0, 32)])
        assert res.row_misses == 1
        assert res.row_hits == 1

    def test_scattered_accesses_miss(self, dram):
        res = dram.process(scattered_trace(64))
        assert res.row_hit_rate < 0.5

    def test_streaming_mostly_hits(self, dram):
        res = dram.process(streaming_trace(1 << 20))
        assert res.row_hit_rate > 0.9

    def test_row_miss_costs_more(self):
        t = DramTimings()
        d = DetailedDram(timings=t)
        hit_trace = d.process([Request(0, 32), Request(32 * 8, 32)])
        # Same channel, same row (second burst maps to channel 0 too after
        # 8-burst interleave) vs a far-away row.
        miss_trace = d.process([Request(0, 32), Request(1 << 22, 32)])
        assert miss_trace.dram_cycles >= hit_trace.dram_cycles


class TestBandwidth:
    def test_streaming_reaches_most_of_peak(self, dram):
        g, t = dram.geometry, dram.timings
        peak = g.channels * g.burst_bytes / t.t_burst * t.clock_hz
        eff = dram.effective_bandwidth(streaming_trace(8 << 20))
        assert eff > 0.6 * peak

    def test_scattered_bandwidth_much_lower(self, dram):
        stream = dram.effective_bandwidth(streaming_trace(1 << 20))
        scattered = dram.effective_bandwidth(scattered_trace(1024))
        assert scattered < stream / 2

    def test_channel_parallelism(self):
        one = DetailedDram(DramGeometry(channels=1))
        eight = DetailedDram(DramGeometry(channels=8))
        trace = streaming_trace(1 << 20)
        assert eight.effective_bandwidth(trace) > 4 * one.effective_bandwidth(
            trace
        )


class TestCalibration:
    def test_calibrated_config_is_sane(self):
        cfg = calibrate_hbm()
        # HBM-class numbers: within 2x of the paper's 128 GB/s headline,
        # double-digit-ns latency.
        assert 50e9 < cfg.peak_bandwidth_bytes_per_s < 300e9
        assert 10 < cfg.access_latency_ns < 200
        assert cfg.burst_bytes == 256

    def test_calibrated_config_drives_queue_model(self):
        from repro.config import EnergyConfig
        from repro.memory import HbmModel

        cfg = calibrate_hbm()
        model = HbmModel(cfg, EnergyConfig(), engine_frequency_hz=500e6)
        cost = model.access(1 << 20)
        assert cost.cycles > 0

    def test_slower_dram_calibrates_slower(self):
        slow = DetailedDram(timings=DramTimings(clock_hz=0.5e9))
        fast = DetailedDram(timings=DramTimings(clock_hz=2e9))
        assert (
            calibrate_hbm(slow).peak_bandwidth_bytes_per_s
            < calibrate_hbm(fast).peak_bandwidth_bytes_per_s
        )


class TestValidation:
    def test_invalid_request(self):
        with pytest.raises(ValueError):
            Request(address=-1, size_bytes=4)
        with pytest.raises(ValueError):
            Request(address=0, size_bytes=0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            DramGeometry(channels=0)

    def test_empty_trace(self, dram):
        res = dram.process([])
        assert res.dram_cycles == 0 and res.bursts == 0
