"""Tests for the resumable per-rung SA stepper.

``generate_sa`` is now a thin wrapper over ``init_rung`` /
``step_rung`` / ``rung_result``; these tests pin the decomposition's
contracts: chunked stepping is bit-identical to one uninterrupted run,
the cooling schedules follow their closed forms, ``RungState`` survives
a JSON round-trip mid-chain, and the energy history stays bounded.
"""

import json

import numpy as np
import pytest

from repro.atoms.generation import (
    HISTORY_CAP,
    AtomGenerator,
    EnergyHistory,
    RungState,
    SAParams,
)
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import GraphBuilder
from repro.ir.transforms import fuse_elementwise


def _small_net():
    b = GraphBuilder(name="stepper")
    x = b.input(16, 16, 16)
    x = b.conv_bn_relu(x, 32, kernel=3, name="c1")
    x = b.conv_bn_relu(x, 32, kernel=3, name="c2")
    x = b.max_pool(x, kernel=2, name="p")
    x = b.conv_bn_relu(x, 64, kernel=3, name="c3")
    return fuse_elementwise(b.build()).graph


def _generator(seed=7):
    engine = EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024)
    cm = EngineCostModel(engine, get_dataflow("kc"))
    return AtomGenerator(_small_net(), cm, rng=np.random.default_rng(seed))


class TestSchedules:
    def test_exponential_closed_form(self):
        p = SAParams(temperature=2.0, cooling=0.9, max_iterations=10)
        for i in range(12):
            assert p.temperature_at(i) == pytest.approx(2.0 * 0.9**i)

    def test_linear_ramp_hits_zero(self):
        p = SAParams(
            temperature=2.0, max_iterations=10, schedule="linear"
        )
        for i in range(10):
            assert p.temperature_at(i) == pytest.approx(2.0 * (1 - i / 10))
        assert p.temperature_at(10) == 0.0
        assert p.temperature_at(15) == 0.0  # clamped, never negative

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            SAParams(schedule="geometric")

    def test_linear_schedule_anneals_deterministically(self):
        params = SAParams(max_iterations=25, schedule="linear")
        r1 = _generator(3).generate_sa(params)
        r2 = _generator(3).generate_sa(params)
        assert r1.tiling == r2.tiling
        assert r1.energy <= r1.history[0] + 1e-9


class TestChunkedStepping:
    @pytest.mark.parametrize("chunk", [1, 7, 100])
    def test_equals_uninterrupted_run(self, chunk):
        params = SAParams(max_iterations=30)
        whole = _generator().generate_sa(params)

        gen = _generator()
        state = gen.init_rung(params)
        while not state.converged and state.iteration < params.max_iterations:
            gen.step_rung(state, params, steps=chunk)
        chunked = gen.rung_result(state)

        assert chunked.tiling == whole.tiling
        assert chunked.energy == whole.energy
        assert chunked.iterations == whole.iterations
        assert chunked.history == whole.history

    def test_state_json_roundtrip_mid_chain(self):
        params = SAParams(max_iterations=30)
        gen_a = _generator()
        gen_b = _generator()
        a = gen_a.init_rung(params)
        b = gen_b.init_rung(params)
        gen_a.step_rung(a, params, steps=11)
        gen_b.step_rung(b, params, steps=11)

        b = RungState.from_dict(json.loads(json.dumps(b.to_dict())))
        gen_a.step_rung(a, params)
        gen_b.step_rung(b, params)
        assert a.to_dict() == b.to_dict()

    def test_replica_and_hint_survive_roundtrip(self):
        params = SAParams(max_iterations=5)
        gen = _generator()
        state = gen.init_rung(params, parallel_hint=4, replica=2)
        back = RungState.from_dict(json.loads(json.dumps(state.to_dict())))
        assert back.replica == 2
        assert back.parallel_hint == 4


class TestEnergyHistory:
    def test_stays_bounded_and_keeps_endpoints(self):
        h = EnergyHistory(cap=8)
        for i in range(1000):
            h.append(float(i))
        assert len(h.values()) <= 8
        assert h.count == 1000
        assert h.values()[0] == 0.0
        # Retained samples are the stride-spaced prefix of the stream.
        assert h.values() == [float(i * h.stride) for i in range(len(h.values()))]

    def test_short_chains_keep_every_sample(self):
        h = EnergyHistory()
        for i in range(50):
            h.append(float(i))
        assert h.values() == [float(i) for i in range(50)]
        assert h.stride == 1

    def test_roundtrip_continues_identically(self):
        a = EnergyHistory(cap=8)
        for i in range(37):
            a.append(float(i))
        b = EnergyHistory.from_dict(json.loads(json.dumps(a.to_dict())))
        for i in range(37, 100):
            a.append(float(i))
            b.append(float(i))
        assert a == b

    def test_default_cap_is_history_cap(self):
        assert EnergyHistory().cap == HISTORY_CAP

    def test_generation_result_history_is_bounded(self):
        # A long chain's result history must not grow without bound.
        params = SAParams(max_iterations=40, epsilon=0.0)
        res = _generator().generate_sa(params)
        assert len(res.history) <= HISTORY_CAP
