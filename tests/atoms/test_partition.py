"""Tests for tile grids and dependency-covering index math."""

import pytest

from repro.atoms import TileSize, clamp_tile, grid_for
from repro.atoms.partition import TileGrid
from repro.ir import Region, TensorShape


class TestTileGrid:
    def test_exact_division(self):
        grid = grid_for(TensorShape(8, 8, 16), TileSize(4, 4, 16, 8))
        assert (grid.tiles_h, grid.tiles_w, grid.tiles_c) == (2, 2, 2)
        assert grid.num_tiles == 8

    def test_ragged_edges_shrink(self):
        grid = grid_for(TensorShape(10, 10, 10), TileSize(4, 4, 10, 4))
        assert grid.tiles_h == 3
        last = grid.region(grid.num_tiles - 1)
        assert last.height == 2 and last.width == 2 and last.channels == 2

    def test_regions_cover_tensor_exactly(self):
        shape = TensorShape(10, 7, 5)
        grid = grid_for(shape, TileSize(3, 2, 5, 2))
        total = sum(r.num_elements for r in grid.regions())
        assert total == shape.num_elements

    def test_regions_disjoint(self):
        grid = grid_for(TensorShape(6, 6, 6), TileSize(4, 4, 6, 4))
        regions = grid.regions()
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                assert not a.intersects(b)

    def test_region_index_out_of_range(self):
        grid = grid_for(TensorShape(4, 4, 4), TileSize(2, 2, 4, 4))
        with pytest.raises(ValueError):
            grid.region(grid.num_tiles)


class TestTilesCovering:
    def test_single_tile_query(self):
        grid = grid_for(TensorShape(8, 8, 8), TileSize(4, 4, 8, 8))
        hits = grid.tiles_covering(Region((0, 3), (0, 3), (0, 7)))
        assert hits == [0]

    def test_halo_query_spans_neighbours(self):
        grid = grid_for(TensorShape(8, 8, 8), TileSize(4, 4, 8, 8))
        # A region straddling the h/w tile boundary touches all 4 tiles.
        hits = grid.tiles_covering(Region((3, 4), (3, 4), (0, 7)))
        assert sorted(hits) == [0, 1, 2, 3]

    def test_covering_matches_intersection_scan(self):
        grid = grid_for(TensorShape(9, 7, 6), TileSize(4, 3, 6, 4))
        query = Region((2, 6), (1, 5), (1, 4))
        brute = [
            i for i in range(grid.num_tiles)
            if grid.region(i).intersects(query)
        ]
        assert sorted(grid.tiles_covering(query)) == brute

    def test_out_of_bounds_query_clipped(self):
        grid = grid_for(TensorShape(4, 4, 4), TileSize(2, 2, 4, 4))
        hits = grid.tiles_covering(Region((0, 100), (0, 100), (0, 100)))
        assert sorted(hits) == list(range(grid.num_tiles))


class TestClampTile:
    def test_oversized_tile_saturates(self):
        t = clamp_tile(TileSize(100, 100, 100, 100), TensorShape(8, 8, 4), 16)
        assert t == TileSize(8, 8, 16, 4)

    def test_fitting_tile_unchanged(self):
        t = clamp_tile(TileSize(4, 4, 8, 2), TensorShape(8, 8, 4), 16)
        assert t == TileSize(4, 4, 8, 2)
