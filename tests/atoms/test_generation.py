"""Tests for SA/GA atomic tensor generation (Algorithm 1)."""

import numpy as np
import pytest

from repro.atoms import (
    AtomGenerator,
    GAParams,
    SAParams,
    TileSize,
    derive_vector_tiling,
    layer_sequential_tiling,
    grid_for,
)
from repro.config import EngineConfig
from repro.engine import EngineCostModel, get_dataflow
from repro.ir import GraphBuilder, Input
from repro.ir.transforms import fuse_elementwise
from repro.models import resnet50


def _small_net():
    b = GraphBuilder(name="gen")
    x = b.input(16, 16, 16)
    x = b.conv_bn_relu(x, 32, kernel=3, name="c1")
    x = b.conv_bn_relu(x, 32, kernel=3, name="c2")
    x = b.max_pool(x, kernel=2, name="p")
    x = b.conv_bn_relu(x, 64, kernel=3, name="c3")
    return fuse_elementwise(b.build()).graph


@pytest.fixture
def generator():
    engine = EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024)
    cm = EngineCostModel(engine, get_dataflow("kc"))
    return AtomGenerator(_small_net(), cm, rng=np.random.default_rng(7))


class TestSA:
    def test_produces_tiling_for_all_layers(self, generator):
        res = generator.generate_sa(SAParams(max_iterations=30))
        graph = generator.graph
        non_input = [
            n.node_id for n in graph.nodes if not isinstance(n.op, Input)
        ]
        assert set(res.tiling) == set(non_input)

    def test_balances_cycles(self, generator):
        res = generator.generate_sa(SAParams(max_iterations=60))
        cycles = np.array(list(res.layer_cycles.values()), dtype=float)
        # Normalized std below 60%: layers with very different shapes end up
        # within the same cycle neighbourhood.
        assert cycles.std() / cycles.mean() < 0.6

    def test_history_recorded(self, generator):
        res = generator.generate_sa(SAParams(max_iterations=15))
        assert len(res.history) == res.iterations + 1

    def test_converges_not_worse_than_start(self, generator):
        res = generator.generate_sa(SAParams(max_iterations=60))
        assert res.energy <= res.history[0] + 1e-9

    def test_deterministic_given_seed(self):
        engine = EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024)
        cm = EngineCostModel(engine, get_dataflow("kc"))
        g = _small_net()
        r1 = AtomGenerator(g, cm, rng=np.random.default_rng(3)).generate_sa(
            SAParams(max_iterations=20)
        )
        r2 = AtomGenerator(g, cm, rng=np.random.default_rng(3)).generate_sa(
            SAParams(max_iterations=20)
        )
        assert r1.tiling == r2.tiling

    def test_parallel_hint_keeps_layers_fine_grained(self, generator):
        res = generator.generate_sa(SAParams(max_iterations=40), parallel_hint=8)
        graph = generator.graph
        for node in graph.compute_nodes():
            grid = grid_for(node.output_shape, res.tiling[node.node_id])
            # Layers large enough must yield at least a handful of atoms.
            if node.output_shape.num_elements >= 8 * 64:
                assert grid.num_tiles >= 4

    def test_tiles_respect_buffer(self, generator):
        res = generator.generate_sa(SAParams(max_iterations=30))
        for node in generator.graph.compute_nodes():
            cycles = generator.atom_cycles(
                node,
                generator._even_coeffs(node, 8),
            )
            assert cycles < 10**12  # feasible seed exists for each layer


class TestGA:
    def test_ga_improves_over_generations(self, generator):
        res = generator.generate_ga(GAParams(generations=15, population=10))
        assert res.history[-1] <= res.history[0] + 1e-9

    def test_ga_history_monotone_nonincreasing(self, generator):
        # Elitism: the best individual survives each generation.
        res = generator.generate_ga(GAParams(generations=12, population=8))
        assert all(a >= b - 1e-12 for a, b in zip(res.history, res.history[1:]))


class TestDerivedTiling:
    def test_vector_layers_follow_producer_grid(self):
        g = _small_net()
        pool = next(n for n in g.nodes if type(n.op).__name__ == "Pool")
        compute_tiling = {
            n.node_id: TileSize(8, 8, 16, 16) for n in g.compute_nodes()
        }
        tiling = derive_vector_tiling(g, compute_tiling)
        producer = g.node(pool.inputs[0])
        pgrid = grid_for(producer.output_shape, tiling[producer.node_id])
        vgrid = grid_for(pool.output_shape, tiling[pool.node_id])
        assert (vgrid.tiles_h, vgrid.tiles_w, vgrid.tiles_c) == (
            pgrid.tiles_h,
            pgrid.tiles_w,
            pgrid.tiles_c,
        )

    def test_layer_sequential_tiling_covers_all(self):
        g = _small_net()
        tiling = layer_sequential_tiling(g, 16)
        assert all(
            n.node_id in tiling
            for n in g.nodes
            if not isinstance(n.op, Input)
        )

    def test_layer_sequential_yields_about_n_parts(self):
        g = fuse_elementwise(resnet50(input_size=64)).graph
        tiling = layer_sequential_tiling(g, 16)
        node = g.compute_nodes()[0]
        grid = grid_for(node.output_shape, tiling[node.node_id])
        assert 8 <= grid.num_tiles <= 32
