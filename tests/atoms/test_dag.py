"""Tests for atomic DAG construction and dependency inference."""

import pytest

from repro.atoms import AtomId, TileSize, build_atomic_dag, uniform_tiling
from repro.ir import GraphBuilder
from repro.ir.transforms import fuse_elementwise


def _fused(graph):
    return fuse_elementwise(graph).graph


class TestConstruction:
    def test_input_node_produces_no_atoms(self, chain_dag):
        layers = {a.layer for a in chain_dag.atoms}
        assert 0 not in layers  # node 0 is the Input

    def test_atom_count_matches_grids(self, chain_dag):
        expected = sum(g.num_tiles for g in chain_dag.grids.values())
        assert chain_dag.num_atoms == expected

    def test_costs_aligned_with_atoms(self, chain_dag):
        assert len(chain_dag.costs) == chain_dag.num_atoms

    def test_validates(self, chain_dag):
        chain_dag.validate()

    def test_index_of_round_trips(self, chain_dag):
        for i, atom in enumerate(chain_dag.atoms):
            assert chain_dag.index_of(atom.atom_id) == i

    def test_index_of_unknown_raises(self, chain_dag):
        with pytest.raises(KeyError):
            chain_dag.index_of(AtomId(sample=0, layer=1, index=9999))

    def test_zero_batch_rejected(self, chain_graph, kc_model):
        g = _fused(chain_graph)
        with pytest.raises(ValueError):
            build_atomic_dag(g, {}, kc_model, batch=0)


class TestDependencies:
    def test_first_layer_reads_dram(self, chain_dag):
        first_layer = min(a.layer for a in chain_dag.atoms)
        for i in chain_dag.atoms_of_layer(first_layer):
            assert chain_dag.preds[i] == ()
            assert chain_dag.dram_input_bytes[i] > 0

    def test_halo_dependencies(self, kc_model):
        # 3x3 conv: an interior consumer tile overlaps 4 producer tiles when
        # its receptive field crosses both tile boundaries.
        b = GraphBuilder(name="halo")
        x = b.input(8, 8, 4)
        c1 = b.conv(x, 4, kernel=3, name="c1")
        b.conv(c1, 4, kernel=3, name="c2")
        g = b.build()
        dag = build_atomic_dag(g, uniform_tiling(g, TileSize(4, 4, 4, 4)), kc_model)
        c2_id = g.by_name("c2").node_id
        atoms = list(dag.atoms_of_layer(c2_id))
        # Every c2 tile touches its own producer tile plus halo neighbours.
        pred_counts = [len(dag.preds[i]) for i in atoms]
        assert all(c == 4 for c in pred_counts)

    def test_pointwise_conv_is_one_to_one(self, kc_model):
        b = GraphBuilder(name="pw")
        x = b.input(8, 8, 4)
        c1 = b.conv(x, 4, kernel=1, name="c1")
        b.conv(c1, 4, kernel=1, name="c2")
        g = b.build()
        dag = build_atomic_dag(g, uniform_tiling(g, TileSize(4, 4, 4, 4)), kc_model)
        c2_id = g.by_name("c2").node_id
        for i in dag.atoms_of_layer(c2_id):
            assert len(dag.preds[i]) == 1

    def test_edge_bytes_equal_overlap(self, kc_model):
        b = GraphBuilder(name="pw")
        x = b.input(8, 8, 4)
        c1 = b.conv(x, 4, kernel=1, name="c1")
        b.conv(c1, 4, kernel=1, name="c2")
        g = b.build()
        dag = build_atomic_dag(g, uniform_tiling(g, TileSize(4, 8, 4, 4)), kc_model)
        c2_id = g.by_name("c2").node_id
        for i in dag.atoms_of_layer(c2_id):
            (p,) = dag.preds[i]
            assert dag.edge_bytes[(p, i)] == dag.atoms[i].region.num_elements

    def test_concat_edges_respect_channel_ranges(self, branching_graph, kc_model):
        g = _fused(branching_graph)
        tiling = uniform_tiling(g, TileSize(8, 8, 16, 8))
        dag = build_atomic_dag(g, tiling, kc_model)
        join = g.by_name("join").node_id
        b1 = g.by_name("b1").node_id
        b2 = g.by_name("b2").node_id
        atoms = list(dag.atoms_of_layer(join))
        # Tiled 8 channels each: first concat tile reads b1, second reads b2.
        first, second = atoms[0], atoms[1]
        pred_layers_first = {dag.atoms[p].layer for p in dag.preds[first]}
        pred_layers_second = {dag.atoms[p].layer for p in dag.preds[second]}
        assert pred_layers_first == {b1}
        assert pred_layers_second == {b2}

    def test_residual_add_depends_on_both_branches(self, residual_graph, kc_model):
        g = _fused(residual_graph)
        tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
        dag = build_atomic_dag(g, tiling, kc_model)
        join = g.by_name("join").node_id
        for i in dag.atoms_of_layer(join):
            pred_layers = {dag.atoms[p].layer for p in dag.preds[i]}
            assert len(pred_layers) == 2


class TestBatch:
    def test_batch_replicates_atoms(self, chain_graph, kc_model):
        g = _fused(chain_graph)
        tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
        d1 = build_atomic_dag(g, tiling, kc_model, batch=1)
        d3 = build_atomic_dag(g, tiling, kc_model, batch=3)
        assert d3.num_atoms == 3 * d1.num_atoms

    def test_no_cross_sample_edges(self, chain_graph, kc_model):
        g = _fused(chain_graph)
        tiling = uniform_tiling(g, TileSize(4, 4, 8, 8))
        dag = build_atomic_dag(g, tiling, kc_model, batch=2)
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert dag.atoms[p].sample == dag.atoms[i].sample

    def test_weight_key_shared_across_samples(self, chain_graph, kc_model):
        g = _fused(chain_graph)
        tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
        dag = build_atomic_dag(g, tiling, kc_model, batch=2)
        layer = g.compute_nodes()[0].node_id
        k0 = dag.weight_key(dag.atoms_of_layer(layer, 0)[0])
        k1 = dag.weight_key(dag.atoms_of_layer(layer, 1)[0])
        assert k0 == k1 and k0 is not None


class TestHelpers:
    def test_total_compute_cycles(self, chain_dag):
        assert chain_dag.total_compute_cycles() == sum(
            c.cycles for c in chain_dag.costs
        )

    def test_indegrees_fresh_copy(self, chain_dag):
        d1 = chain_dag.indegrees()
        d1[0] = 999
        assert chain_dag.indegrees()[0] != 999 or chain_dag.preds[0] == ()

    def test_weight_key_none_for_vector_atoms(self, residual_graph, kc_model):
        g = _fused(residual_graph)
        tiling = uniform_tiling(g, TileSize(8, 8, 8, 8))
        dag = build_atomic_dag(g, tiling, kc_model)
        join = g.by_name("join").node_id
        for i in dag.atoms_of_layer(join):
            assert dag.weight_key(i) is None
