"""Tests for the resilience subsystem (fault injection, supervision,
checkpointing, chaos determinism)."""
