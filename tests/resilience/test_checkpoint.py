"""Tests for the append-only checkpoint journal."""

import json

import pytest

from repro.resilience import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointJournal,
)
from repro.resilience.checkpoint import CHECKPOINT_VERSION

KEY = {"workload": "vgg", "seed": 0, "mesh": [2, 2]}


def _record(label, **extra):
    return {"label": label, "fingerprint": f"fp-{label}", **extra}


def _journal(tmp_path, name="ck.jsonl", key=KEY):
    return CheckpointJournal(tmp_path / name, key)


class TestRoundTrip:
    def test_fresh_journal_writes_header_and_loads_back(self, tmp_path):
        with _journal(tmp_path) as j:
            assert j.open() == {}
            j.append(_record("sa[0]", cycles=100))
            j.append(_record("sa[1]", cycles=200))
        with _journal(tmp_path) as j:
            records = j.open(resume=True)
        assert set(records) == {"sa[0]", "sa[1]"}
        assert records["sa[0]"]["cycles"] == 100

    def test_header_shape(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
        header = json.loads((tmp_path / "ck.jsonl").read_text().splitlines()[0])
        assert header == {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "key": KEY,
        }

    def test_open_without_resume_truncates(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
            j.append(_record("sa[0]"))
        with _journal(tmp_path) as j:
            assert j.open(resume=False) == {}
        with _journal(tmp_path) as j:
            assert j.open(resume=True) == {}

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        with _journal(tmp_path, "new.jsonl") as j:
            assert j.open(resume=True) == {}

    def test_resume_appends_rather_than_rewriting(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
            j.append(_record("sa[0]"))
        with _journal(tmp_path) as j:
            j.open(resume=True)
            j.append(_record("sa[1]"))
        with _journal(tmp_path) as j:
            assert set(j.open(resume=True)) == {"sa[0]", "sa[1]"}

    def test_append_requires_open(self, tmp_path):
        with pytest.raises(RuntimeError, match="not open"):
            _journal(tmp_path).append(_record("sa[0]"))


class TestRefusals:
    def test_key_mismatch_refuses_resume(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
        other = _journal(tmp_path, key={**KEY, "seed": 1})
        with pytest.raises(CheckpointError, match="different search"):
            other.open(resume=True)

    def test_key_comparison_survives_json_round_trip(self, tmp_path):
        # Tuples become lists on disk; the key must compare equal anyway.
        with _journal(tmp_path, key={"mesh": (2, 2)}) as j:
            j.open()
        with _journal(tmp_path, key={"mesh": (2, 2)}) as j:
            assert j.open(resume=True) == {}

    def test_not_a_journal_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(CheckpointError, match="not an"):
            CheckpointJournal(path, KEY).open(resume=True)

    def test_wrong_version_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(
            json.dumps(
                {"format": CHECKPOINT_FORMAT, "version": 999, "key": KEY}
            )
            + "\n"
        )
        with pytest.raises(CheckpointError, match="version"):
            CheckpointJournal(path, KEY).open(resume=True)

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            CheckpointJournal(path, KEY).open(resume=True)


class TestTornWrites:
    def test_torn_final_line_is_dropped(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
            j.append(_record("sa[0]"))
        path = tmp_path / "ck.jsonl"
        path.write_text(path.read_text() + '{"label": "sa[1]", "finge')
        with _journal(tmp_path) as j:
            records = j.open(resume=True)
        assert set(records) == {"sa[0]"}

    def test_final_record_without_label_is_dropped(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
            j.append(_record("sa[0]"))
        path = tmp_path / "ck.jsonl"
        path.write_text(path.read_text() + '{"fingerprint": "fp"}\n')
        with _journal(tmp_path) as j:
            assert set(j.open(resume=True)) == {"sa[0]"}

    def test_torn_middle_line_is_corruption(self, tmp_path):
        with _journal(tmp_path) as j:
            j.open()
            j.append(_record("sa[0]"))
        path = tmp_path / "ck.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], "garbage", lines[1]]) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            _journal(tmp_path).open(resume=True)

    def test_later_record_for_same_label_wins(self, tmp_path):
        # Resuming appends to the same file, so a label journaled in two
        # sessions appears twice; the newest record is authoritative.
        with _journal(tmp_path) as j:
            j.open()
            j.append(_record("sa[0]", cycles=1))
            j.append(_record("sa[0]", cycles=2))
        with _journal(tmp_path) as j:
            assert j.open(resume=True)["sa[0]"]["cycles"] == 2
