"""Tests for the resilient executor: retry, timeout, respawn, degradation.

Task functions must live at module level so the spawn-context pool can
pickle them.  Pool tests pay ~1 s of worker start-up each (spawn on this
box), so the pool matrix stays deliberately small; the full search-level
chaos matrix lives in ``test_chaos.py``.
"""

import multiprocessing
import os
import time

import pytest

from repro.resilience import ResilientExecutor, RetryPolicy, TaskReport


def _succeed(attempt, payload):
    return payload * 10


def _fail_until(attempt, payload):
    """Fail the first ``payload`` attempts, then succeed."""
    if attempt < payload:
        raise ValueError(f"transient failure #{attempt}")
    return payload * 10


def _always_fail(attempt, payload):
    raise ValueError("permanent failure")


def _raise_interrupt(attempt, payload):
    if payload == "boom":
        raise KeyboardInterrupt
    return payload


def _die_once(attempt, payload):
    """Kill the worker process on the first attempt only."""
    if attempt == 0:
        os._exit(1)
    return payload * 10


def _die_in_workers(attempt, payload):
    """Always kill pool workers; succeed when run inline in the parent."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return payload * 10


def _stall_once(attempt, payload):
    if attempt == 0:
        time.sleep(120)
    return payload * 10


class TestInline:
    def test_success(self):
        with ResilientExecutor(jobs=1) as ex:
            reports = ex.map(_succeed, [1, 2, 3])
        assert [r.value for r in reports] == [10, 20, 30]
        assert all(r.ok and r.attempts == 1 and r.error == "" for r in reports)

    def test_transient_failure_is_retried(self):
        policy = RetryPolicy(retries=2, backoff_s=0.0)
        with ResilientExecutor(jobs=1, policy=policy) as ex:
            reports = ex.map(_fail_until, [0, 1, 2])
        assert [r.value for r in reports] == [0, 10, 20]
        assert [r.attempts for r in reports] == [1, 2, 3]
        assert all(r.ok for r in reports)

    def test_exhausted_retries_fail_without_aborting_siblings(self):
        policy = RetryPolicy(retries=1, backoff_s=0.0)
        with ResilientExecutor(jobs=1, policy=policy) as ex:
            reports = ex.map(_fail_until, [0, 5, 0])
        ok0, failed, ok2 = reports
        assert ok0.ok and ok2.ok
        assert failed.status == "failed"
        assert failed.attempts == 2  # retries=1 → two attempts total
        assert "transient failure #1" in failed.error

    def test_zero_retries_fails_on_first_error(self):
        with ResilientExecutor(jobs=1, policy=RetryPolicy(retries=0)) as ex:
            (report,) = ex.map(_always_fail, ["x"])
        assert report.status == "failed"
        assert report.attempts == 1
        assert "permanent failure" in report.error

    def test_verify_rejection_burns_attempts(self):
        seen = []

        def verify(index, value):
            seen.append(value)
            return "integrity check failed"

        policy = RetryPolicy(retries=1, backoff_s=0.0)
        with ResilientExecutor(jobs=1, policy=policy) as ex:
            (report,) = ex.map(_succeed, [4], verify=verify)
        assert report.status == "failed"
        assert report.attempts == 2
        assert report.error == "integrity check failed"
        assert seen == [40, 40]  # the value was produced, then rejected

    def test_on_success_hook_runs_per_accepted_task(self):
        accepted: list[TaskReport] = []
        with ResilientExecutor(jobs=1) as ex:
            ex.map(_succeed, [1, 2], on_success=accepted.append)
        assert [r.value for r in accepted] == [10, 20]

    def test_keyboard_interrupt_returns_partial_results(self):
        with ResilientExecutor(jobs=1) as ex:
            reports = ex.map(_raise_interrupt, ["a", "boom", "c"])
            assert ex.interrupted
            later = ex.map(_succeed, [1])
        assert reports[0].ok and reports[0].value == "a"
        assert [r.status for r in reports[1:]] == ["interrupted"] * 2
        # Once interrupted, later phases return immediately.
        assert later[0].status == "interrupted"

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.3)
        assert policy.backoff_for(3) == pytest.approx(0.9)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(candidate_timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_restarts=-1)
        with pytest.raises(ValueError):
            ResilientExecutor(jobs=0)


class TestPool:
    def test_results_arrive_in_payload_order(self):
        with ResilientExecutor(jobs=2) as ex:
            reports = ex.map(_succeed, [3, 1, 2])
        assert [r.value for r in reports] == [30, 10, 20]
        assert all(r.ok for r in reports)

    def test_worker_death_respawns_and_retries(self):
        policy = RetryPolicy(retries=2, backoff_s=0.0)
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            reports = ex.map(_die_once, [1, 2, 3])
            assert ex.pool_failures >= 1
            assert not ex.degraded
        assert [r.value for r in reports] == [10, 20, 30]
        assert all(r.ok for r in reports)

    def test_repeated_pool_failures_degrade_to_inline(self):
        policy = RetryPolicy(retries=5, backoff_s=0.0, max_pool_restarts=1)
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            reports = ex.map(_die_in_workers, [1, 2])
            assert ex.degraded
            assert ex.pool_failures >= 2
        # Inline fallback completed what the pool never could.
        assert [r.value for r in reports] == [10, 20]

    def test_stalled_candidate_is_timed_out_and_retried(self):
        # The deadline clock includes ~1 s of spawn-context worker
        # start-up (see the executor module docstring), so the timeout
        # must sit comfortably above it.
        policy = RetryPolicy(retries=1, backoff_s=0.0, candidate_timeout_s=5.0)
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            t0 = time.monotonic()
            (report,) = ex.map(_stall_once, [7])
            elapsed = time.monotonic() - t0
            assert ex.pool_failures >= 1
        assert report.ok and report.value == 70
        assert report.attempts == 2
        assert elapsed < 60  # nowhere near the 120 s stall
