"""Tests for the deterministic fault-injection harness."""

import time
from dataclasses import dataclass

import pytest

from repro.pipeline import CandidateTrace
from repro.resilience import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(index=0, kind="meteor-strike")

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown fault phase"):
            FaultSpec(index=0, kind="raise", phase="teardown")

    def test_corrupt_result_is_eval_only(self):
        with pytest.raises(ValueError, match="eval phase"):
            FaultSpec(index=0, kind="corrupt-result", phase="tiling")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(index=-1, kind="raise")


class TestMatching:
    def test_default_attempt_zero_is_transient(self):
        spec = FaultSpec(index=3, kind="raise")
        assert spec.matches("eval", 3, 0)
        assert not spec.matches("eval", 3, 1)  # the retry goes through

    def test_attempt_none_is_permanent(self):
        spec = FaultSpec(index=3, kind="raise", attempt=None)
        assert all(spec.matches("eval", 3, a) for a in range(5))

    def test_phase_and_index_must_match(self):
        spec = FaultSpec(index=3, kind="raise", phase="tiling")
        assert spec.matches("tiling", 3, 0)
        assert not spec.matches("eval", 3, 0)
        assert not spec.matches("tiling", 2, 0)

    def test_spec_for_finds_first_armed_fault(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(index=0, kind="raise"),
                FaultSpec(index=1, kind="stall"),
            )
        )
        assert plan.spec_for("eval", 1, 0).kind == "stall"
        assert plan.spec_for("eval", 2, 0) is None
        assert plan.spec_for("eval", 0, 1) is None


class TestPlanConstruction:
    def test_single(self):
        plan = FaultPlan.single(2, "kill-worker")
        assert len(plan.specs) == 1
        assert plan.specs[0].index == 2
        assert plan.specs[0].kind == "kill-worker"

    def test_seeded_is_reproducible(self):
        a = FaultPlan.seeded(7, 5)
        b = FaultPlan.seeded(7, 5)
        assert a == b
        assert len(a.specs) == 5
        assert all(s.kind in FAULT_KINDS for s in a.specs)

    def test_seeded_candidate_streams_are_independent(self):
        # Candidate i's fault depends only on (seed, i), so growing the
        # candidate list never changes earlier candidates' faults.
        short = FaultPlan.seeded(7, 3)
        long = FaultPlan.seeded(7, 8)
        assert long.specs[:3] == short.specs

    def test_seeded_different_seeds_differ(self):
        kinds = [s.kind for s in FaultPlan.seeded(0, 32).specs]
        other = [s.kind for s in FaultPlan.seeded(1, 32).specs]
        assert kinds != other

    def test_seeded_rate_zero_is_empty(self):
        assert FaultPlan.seeded(7, 16, rate=0.0).specs == ()


class TestFiring:
    def test_raise_fires_injected_fault(self):
        plan = FaultPlan.single(1, "raise")
        with pytest.raises(InjectedFault, match="injected raise"):
            plan.fire("eval", 1, 0)

    def test_unarmed_fire_is_noop(self):
        plan = FaultPlan.single(1, "raise")
        plan.fire("eval", 0, 0)
        plan.fire("eval", 1, 1)
        plan.fire("tiling", 1, 0)

    def test_inline_stall_never_sleeps(self):
        # The parent process must never actually stall: inline stalls
        # degrade to an immediate InjectedFault.
        plan = FaultPlan.single(0, "stall", stall_s=60.0)
        t0 = time.monotonic()
        with pytest.raises(InjectedFault, match="stall"):
            plan.fire("eval", 0, 0)
        assert time.monotonic() - t0 < 1.0

    def test_inline_kill_worker_never_kills(self):
        # os._exit would take pytest down; inline it must degrade to an
        # ordinary retryable failure.
        plan = FaultPlan.single(0, "kill-worker")
        with pytest.raises(InjectedFault, match="worker death"):
            plan.fire("eval", 0, 0)

    def test_corrupt_result_does_not_fire(self):
        FaultPlan.single(0, "corrupt-result").fire("eval", 0, 0)


@dataclass(frozen=True)
class _FakeSolution:
    trace: CandidateTrace
    payload: str = "untouched"


def _trace(**overrides) -> CandidateTrace:
    base = dict(
        label="sa[0]", fingerprint="fp-0", accepted=True,
        reason="selected", total_cycles=100,
    )
    base.update(overrides)
    return CandidateTrace(**base)


class TestTampering:
    def test_tamper_flips_fingerprint_and_cycles(self):
        plan = FaultPlan.single(0, "corrupt-result")
        sol = _FakeSolution(trace=_trace())
        out = plan.tamper("eval", 0, 0, sol)
        assert out.trace.fingerprint == "corrupted-by-fault"
        assert out.trace.total_cycles == 101
        assert out.payload == "untouched"
        # The original is never mutated.
        assert sol.trace.fingerprint == "fp-0"

    def test_unarmed_tamper_returns_solution_unchanged(self):
        plan = FaultPlan.single(0, "corrupt-result")
        sol = _FakeSolution(trace=_trace())
        assert plan.tamper("eval", 1, 0, sol) is sol
        assert plan.tamper("eval", 0, 1, sol) is sol

    def test_non_corrupt_faults_never_tamper(self):
        sol = _FakeSolution(trace=_trace())
        assert FaultPlan.single(0, "raise").tamper("eval", 0, 0, sol) is sol
