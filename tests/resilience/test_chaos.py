"""Chaos-determinism tests: the supervised search must survive injected
faults at every candidate index and still decide bit-identically to a
fault-free run — the paper's search is deterministic, so resilience may
change wall-clock behaviour but never results."""

import itertools
import json

import pytest

from repro.atoms.generation import SAParams
from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model
from repro.resilience import CheckpointError, FaultPlan, FaultSpec

FAULT_KINDS = ("raise", "stall", "kill-worker", "corrupt-result")


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


def run_search(model, arch, **overrides):
    settings = dict(
        sa_params=SAParams(max_iterations=8), restarts=2, seed=11
    )
    settings.update(overrides)
    options = OptimizerOptions(**settings)
    return AtomicDataflowOptimizer(get_model(model), arch, options).optimize()


def decisions(outcome):
    """The resilience-invariant part of a trace (no timings/attempts)."""
    return [
        (t.label, t.fingerprint, t.accepted, t.reason, t.total_cycles)
        for t in outcome.traces
    ]


@pytest.fixture(scope="module")
def baseline_vgg(arch):
    return run_search("vgg19_bench", arch, jobs=1)


@pytest.fixture(scope="module")
def baseline_mobilenet(arch):
    return run_search("mobilenet_v2_bench", arch, jobs=1)


def assert_identical(outcome, baseline):
    assert decisions(outcome) == decisions(baseline)
    assert outcome.result.total_cycles == baseline.result.total_cycles
    assert outcome.placement == baseline.placement
    assert [r.atom_indices for r in outcome.schedule.rounds] == [
        r.atom_indices for r in baseline.schedule.rounds
    ]


class TestChaosMatrix:
    """Every (fault kind, candidate index) cell on vgg19_bench."""

    @pytest.mark.parametrize(
        "kind,index",
        list(itertools.product(FAULT_KINDS, range(3))),
    )
    def test_single_fault_is_invisible_in_the_answer(
        self, kind, index, arch, baseline_vgg
    ):
        assert len(baseline_vgg.traces) == 3  # matrix covers every index
        outcome = run_search(
            "vgg19_bench", arch, jobs=2, retries=2,
            faults=FaultPlan.single(index, kind, stall_s=0.5),
        )
        assert_identical(outcome, baseline_vgg)
        assert all(t.attempts >= 1 for t in outcome.traces)
        if kind == "kill-worker":
            assert outcome.pool_restarts >= 1

    @pytest.mark.parametrize("index", range(3))
    def test_second_model_cycled_kinds(self, index, arch, baseline_mobilenet):
        assert len(baseline_mobilenet.traces) == 3
        kind = FAULT_KINDS[index % len(FAULT_KINDS)]
        outcome = run_search(
            "mobilenet_v2_bench", arch, jobs=2, retries=2,
            faults=FaultPlan.single(index, kind, stall_s=0.5),
        )
        assert_identical(outcome, baseline_mobilenet)

    def test_jobs_four_with_worker_death(self, arch, baseline_vgg):
        outcome = run_search(
            "vgg19_bench", arch, jobs=4, retries=2,
            faults=FaultPlan.single(1, "kill-worker"),
        )
        assert_identical(outcome, baseline_vgg)

    def test_tiling_phase_fault(self, arch, baseline_vgg):
        outcome = run_search(
            "vgg19_bench", arch, jobs=2, retries=2,
            faults=FaultPlan(
                specs=(FaultSpec(index=1, kind="raise", phase="tiling"),)
            ),
        )
        assert_identical(outcome, baseline_vgg)
        assert outcome.traces[1].attempts >= 2

    def test_inline_faults_follow_the_same_supervision(self, arch, baseline_vgg):
        outcome = run_search(
            "vgg19_bench", arch, jobs=1, retries=2,
            faults=FaultPlan.single(2, "raise"),
        )
        assert_identical(outcome, baseline_vgg)
        assert outcome.traces[2].attempts == 2


class TestFailureIsolation:
    def test_permanent_failure_skips_candidate_not_search(self, arch):
        outcome = run_search(
            "vgg19_bench", arch, jobs=1, retries=2,
            faults=FaultPlan(
                specs=(FaultSpec(index=1, kind="raise", attempt=None),)
            ),
        )
        failed = outcome.traces[1]
        assert failed.failed and not failed.accepted
        assert failed.reason.startswith("failed after 3 attempts: ")
        assert "InjectedFault" in failed.error
        assert failed.total_cycles is None
        # The search still selected a best among the survivors.
        assert sum(t.accepted for t in outcome.traces) == 1
        assert outcome.search_stats.failed == 1
        assert outcome.result.total_cycles > 0

    def test_all_candidates_failing_raises_with_the_causes(self, arch):
        with pytest.raises(RuntimeError, match="InjectedFault"):
            run_search(
                "vgg19_bench", arch, jobs=1, retries=0,
                faults=FaultPlan(
                    specs=tuple(
                        FaultSpec(index=i, kind="raise", attempt=None)
                        for i in range(3)
                    )
                ),
            )


class TestCheckpointResume:
    def test_full_resume_reevaluates_nothing(self, arch, baseline_vgg, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first = run_search("vgg19_bench", arch, jobs=1, checkpoint=path)
        assert_identical(first, baseline_vgg)
        resumed = run_search(
            "vgg19_bench", arch, jobs=1, checkpoint=path, resume=True
        )
        assert_identical(resumed, baseline_vgg)
        evaluated = sum(t.evaluated for t in baseline_vgg.traces)
        assert resumed.search_stats.restored == evaluated
        assert all(t.restored for t in resumed.traces if t.evaluated)

    def test_mid_search_resume_matches_uninterrupted_run(
        self, arch, baseline_vgg, tmp_path
    ):
        path = tmp_path / "ck.jsonl"
        run_search("vgg19_bench", arch, jobs=1, checkpoint=str(path))
        # Keep the header and the first completed candidate only — the
        # journal a run killed mid-search would have left behind.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_search(
            "vgg19_bench", arch, jobs=1, checkpoint=str(path), resume=True
        )
        assert_identical(resumed, baseline_vgg)
        assert resumed.search_stats.restored == 1
        label = json.loads(lines[1])["label"]
        restored = [t for t in resumed.traces if t.restored]
        assert [t.label for t in restored] == [label]

    def test_resume_with_faults_still_matches(self, arch, baseline_vgg, tmp_path):
        path = tmp_path / "ck.jsonl"
        run_search("vgg19_bench", arch, jobs=1, checkpoint=str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_search(
            "vgg19_bench", arch, jobs=2, retries=2,
            checkpoint=str(path), resume=True,
            faults=FaultPlan.single(1, "raise"),
        )
        assert_identical(resumed, baseline_vgg)

    def test_mismatched_search_refuses_to_resume(self, arch, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        run_search("vgg19_bench", arch, jobs=1, checkpoint=path)
        with pytest.raises(CheckpointError, match="different search"):
            run_search(
                "vgg19_bench", arch, jobs=1, checkpoint=path, resume=True,
                seed=12,
            )

    def test_corrupt_record_is_reevaluated_not_trusted(
        self, arch, baseline_vgg, tmp_path
    ):
        path = tmp_path / "ck.jsonl"
        run_search("vgg19_bench", arch, jobs=1, checkpoint=str(path))
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["tiling"] = {k: [1, 1, 1, 1] for k in record["tiling"]}
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        resumed = run_search(
            "vgg19_bench", arch, jobs=1, checkpoint=str(path), resume=True
        )
        # The tampered record fails fingerprint re-verification and its
        # candidate is silently re-evaluated; the answer is unchanged.
        assert_identical(resumed, baseline_vgg)
        tampered_label = record["label"]
        trace = next(t for t in resumed.traces if t.label == tampered_label)
        assert not trace.restored
