"""Tests for the LS / CNN-P / IL-Pipe / Rammer / Ideal baselines."""

import pytest

from repro.baselines import (
    cnn_partition_utilization,
    ideal_result,
    ls_utilization_report,
    run_cnn_partition,
    run_il_pipe,
    run_layer_sequential,
    run_rammer,
)
from repro.config import ArchConfig, EngineConfig
from repro.models import resnet50, vgg19
from repro.pipeline import EvenTilingStage, SearchContext
from repro.scheduling import layer_sequential_schedule


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(mesh_rows=2, mesh_cols=2)


@pytest.fixture(scope="module")
def net():
    return resnet50(input_size=64)


class TestLayerSequential:
    def test_runs_and_labels(self, net, arch):
        r = run_layer_sequential(net, arch)
        assert r.strategy == "LS"
        assert r.total_cycles > 0

    def test_schedule_is_layer_ordered(self, net, arch):
        ctx = SearchContext.create(net, arch, dataflow="kc", batch=1)
        tiling, _ = EvenTilingStage().run(ctx)
        dag = ctx.build_dag(tiling)
        schedule = layer_sequential_schedule(dag, arch.num_engines)
        schedule.validate(dag, arch.num_engines)
        seen_layers = []
        for rnd in schedule.rounds:
            for a in rnd.atom_indices:
                layer = dag.atoms[a].layer
                if not seen_layers or seen_layers[-1] != layer:
                    seen_layers.append(layer)
        assert seen_layers == sorted(seen_layers)

    def test_batch_enhancement_fills_rounds(self, net, arch):
        ctx = SearchContext.create(net, arch, dataflow="kc", batch=2)
        tiling, _ = EvenTilingStage().run(ctx)
        dag2 = ctx.build_dag(tiling)
        interleaved = layer_sequential_schedule(dag2, arch.num_engines)
        serial = layer_sequential_schedule(
            dag2, arch.num_engines, interleave_batch=False
        )
        interleaved.validate(dag2, arch.num_engines)
        assert interleaved.num_rounds <= serial.num_rounds

    def test_utilization_report(self, net, arch):
        rep = ls_utilization_report(net, arch)
        assert rep.per_layer
        assert 0 < rep.average <= 1.0


class TestCnnPartition:
    def test_batch1_equals_ls(self, net, arch):
        cnnp = run_cnn_partition(net, arch, batch=1)
        ls = run_layer_sequential(net, arch, batch=1)
        assert cnnp.strategy == "CNN-P"
        assert cnnp.total_cycles == ls.total_cycles

    def test_batched_pipelines_beat_ls(self, net, arch):
        cnnp = run_cnn_partition(net, arch, batch=8)
        ls = run_layer_sequential(net, arch, batch=8)
        assert cnnp.total_cycles < ls.total_cycles

    def test_auto_clp_count_picks_best(self, net, arch):
        auto = run_cnn_partition(net, arch, batch=8)
        manual = [
            run_cnn_partition(net, arch, batch=8, num_clps=k) for k in (2, 4)
        ]
        assert auto.total_cycles == min(m.total_cycles for m in manual)

    def test_no_onchip_reuse(self, net, arch):
        r = run_cnn_partition(net, arch, batch=8, num_clps=2)
        assert r.onchip_reuse_ratio == 0.0
        assert r.dram_bytes_read > 0 and r.dram_bytes_written > 0

    def test_utilization_helper_in_range(self, net, arch):
        u = cnn_partition_utilization(net, arch, num_clps=2)
        assert 0 < u <= 1.0


class TestIlPipe:
    def test_runs_and_labels(self, net, arch):
        r = run_il_pipe(net, arch)
        assert r.strategy == "IL-Pipe"
        assert r.total_cycles > 0

    def test_throughput_improves_with_batch(self, net, arch):
        r1 = run_il_pipe(net, arch, batch=1)
        r8 = run_il_pipe(net, arch, batch=8)
        assert r8.throughput_fps > r1.throughput_fps

    def test_low_dram_traffic_vs_cnnp(self, net, arch):
        ilp = run_il_pipe(net, arch, batch=8)
        cnnp = run_cnn_partition(net, arch, batch=8, num_clps=2)
        total_ilp = ilp.dram_bytes_read + ilp.dram_bytes_written
        total_cnnp = cnnp.dram_bytes_read + cnnp.dram_bytes_written
        assert total_ilp < total_cnnp


class TestRammer:
    def test_runs_and_labels(self, net, arch):
        r = run_rammer(net, arch)
        assert r.strategy == "Rammer"
        assert r.total_cycles > 0

    def test_not_slower_than_ls_on_branching_net(self, arch):
        # Rammer's co-scheduling pays off when independent operators exist.
        from repro.models import inception_v3

        net = inception_v3(input_size=107)
        ram = run_rammer(net, arch)
        ls = run_layer_sequential(net, arch)
        assert ram.total_cycles <= ls.total_cycles * 1.02


class TestIdeal:
    def test_perfect_utilization(self, net, arch):
        r = ideal_result(net, arch)
        assert r.pe_utilization == 1.0
        assert r.onchip_reuse_ratio == 1.0
        assert r.dram_bytes_read == 0

    def test_lower_bound_on_everything(self, net, arch):
        ideal = ideal_result(net, arch)
        for result in (
            run_layer_sequential(net, arch),
            run_il_pipe(net, arch),
        ):
            assert ideal.total_cycles <= result.total_cycles

    def test_scales_with_batch(self, net, arch):
        r1 = ideal_result(net, arch, batch=1)
        r4 = ideal_result(net, arch, batch=4)
        assert r4.total_cycles == pytest.approx(4 * r1.total_cycles, rel=0.01)
