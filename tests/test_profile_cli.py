"""Tests for the CLI profiling surface: --profile, profile, --verbose."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.obs import disable_tracing
from repro.obs.log import LOGGER_NAME


@pytest.fixture(autouse=True)
def _tracing_off_afterwards():
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    """(exit code, trace document, stdout is checked by callers)."""
    tmp = tmp_path_factory.mktemp("profile-cli")
    trace = tmp / "trace.json"
    sol = tmp / "sol.json"
    rc = main(
        [
            "optimize", "--model", "resnet50_bench", "--mesh", "2x2",
            "--sa-iterations", "4", "--restarts", "2", "--seed", "3",
            "--jobs", "2",
            "--save", str(sol),
            "--profile", str(trace),
        ]
    )
    return rc, json.loads(trace.read_text()), sol


class TestOptimizeProfile:
    def test_exit_code_and_document_shape(self, profiled):
        rc, doc, _ = profiled
        assert rc == 0
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["workload"]
        assert doc["traceEvents"]

    def test_spans_from_all_four_layers(self, profiled):
        _, doc, _ = profiled
        cats = {
            e.get("cat")
            for e in doc["traceEvents"]
            if e["ph"] in "BE"
        }
        assert {"search", "sa", "resilience", "sim"} <= cats

    def test_timestamps_monotonic(self, profiled):
        _, doc, _ = profiled
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] in "BE"]
        assert ts == sorted(ts)

    def test_b_e_pairs_match(self, profiled):
        _, doc, _ = profiled
        stacks = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "B":
                stacks.setdefault((e["pid"], e["tid"]), []).append(e["name"])
            elif e["ph"] == "E":
                assert stacks[(e["pid"], e["tid"])].pop() == e["name"]
        assert all(not s for s in stacks.values())

    def test_every_event_addressable(self, profiled):
        _, doc, _ = profiled
        for e in doc["traceEvents"]:
            assert "pid" in e and "tid" in e and "ph" in e

    def test_simulated_timeline_included(self, profiled):
        _, doc, _ = profiled
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases  # engine intervals
        assert "C" in phases  # HBM / NoC counters

    def test_tracing_left_disabled(self, profiled):
        from repro.obs import tracing_enabled

        assert profiled[0] == 0
        assert not tracing_enabled()


class TestProfileSubcommand:
    def test_reports_and_checks_a_saved_solution(self, profiled, capsys, tmp_path):
        _, _, sol = profiled
        out_trace = tmp_path / "timeline.json"
        rc = main(
            [
                "profile", "--model", "resnet50_bench", "--mesh", "2x2",
                "--solution", str(sol), "--out", str(out_trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "busy" in out and "stall" in out and "idle" in out
        assert "timeline check    : clean" in out
        doc = json.loads(out_trace.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_missing_solution_fails_cleanly(self, tmp_path, capsys):
        rc = main(
            [
                "profile", "--model", "resnet50_bench", "--mesh", "2x2",
                "--solution", str(tmp_path / "nope.json"),
            ]
        )
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err


class TestVerbose:
    def test_flag_parses_and_counts(self):
        args = build_parser().parse_args(["-vv", "models"])
        assert args.verbose == 2
        assert build_parser().parse_args(["models"]).verbose == 0

    def test_verbose_emits_search_lifecycle_logs(self, caplog):
        try:
            rc = main(
                [
                    "-v", "optimize", "--model", "vgg19_bench",
                    "--mesh", "2x2", "--sa-iterations", "4",
                ]
            )
        finally:
            # Reset the level so later tests are not flooded.
            logging.getLogger(LOGGER_NAME).setLevel(logging.WARNING)
            for h in logging.getLogger(LOGGER_NAME).handlers:
                h.setLevel(logging.WARNING)
        assert rc == 0
        messages = [r.getMessage() for r in caplog.records]
        assert any("optimizing" in m for m in messages)
        assert any("selected" in m for m in messages)
