"""The determinism gate: profiling must never change what the search does.

The observability layer's contract is that a profiled run is
bit-identical to an unprofiled one — same decisions, same winner, same
saved solution — at any worker count.  These tests are that contract.
"""

import json

import pytest

from repro.atoms.generation import SAParams
from repro.cli import main
from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model
from repro.obs import disable_tracing, enable_tracing, reset_registry


@pytest.fixture(autouse=True)
def _tracing_off_afterwards():
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(
        mesh_rows=2, mesh_cols=2,
        engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=64 * 1024),
    )


def run_search(model, arch, jobs, profile):
    if profile:
        enable_tracing()
        reset_registry()
    else:
        disable_tracing()
    try:
        options = OptimizerOptions(
            sa_params=SAParams(max_iterations=8),
            restarts=3,
            seed=11,
            jobs=jobs,
        )
        return AtomicDataflowOptimizer(
            get_model(model), arch, options
        ).optimize()
    finally:
        disable_tracing()


def decisions(outcome):
    return [
        (t.label, t.fingerprint, t.accepted, t.reason, t.total_cycles)
        for t in outcome.traces
    ]


@pytest.mark.parametrize("model", ["vgg19_bench", "mobilenet_v2_bench"])
class TestProfiledRunsAreBitIdentical:
    def test_at_jobs_1_and_jobs_4(self, model, arch):
        reference = run_search(model, arch, jobs=1, profile=False)
        for jobs in (1, 4):
            profiled = run_search(model, arch, jobs=jobs, profile=True)
            assert decisions(profiled) == decisions(reference)
            assert (
                profiled.result.total_cycles == reference.result.total_cycles
            )
            assert profiled.placement == reference.placement
            assert [r.atom_indices for r in profiled.schedule.rounds] == [
                r.atom_indices for r in reference.schedule.rounds
            ]
        unprofiled_parallel = run_search(model, arch, jobs=4, profile=False)
        assert decisions(unprofiled_parallel) == decisions(reference)


def normalized_solution(path):
    """A saved solution with wall-clock-dependent fields stripped."""
    doc = json.loads(path.read_text())
    search = doc.get("search", {})
    search.pop("search_seconds", None)
    for trace in search.get("traces", []):
        trace.pop("seconds", None)
    return doc


class TestCliSolutionIdentity:
    def test_profile_flag_does_not_change_the_saved_solution(self, tmp_path):
        base = [
            "optimize", "--model", "vgg19_bench", "--mesh", "2x2",
            "--sa-iterations", "8", "--restarts", "2", "--seed", "11",
        ]
        plain, profiled = tmp_path / "plain.json", tmp_path / "profiled.json"
        assert main(base + ["--save", str(plain)]) == 0
        assert main(
            base
            + ["--save", str(profiled)]
            + ["--profile", str(tmp_path / "trace.json")]
        ) == 0
        assert normalized_solution(plain) == normalized_solution(profiled)
        assert (tmp_path / "trace.json").exists()
