"""Tests for schedule reports and comparison tables."""

import pytest

from repro.mapping import zigzag_placement
from repro.metrics import EnergyBreakdown, RunResult
from repro.noc import Mesh2D
from repro.report import (
    comparison_table,
    layer_utilization_table,
    render_gantt,
    round_composition,
    summarize_schedule,
)
from repro.scheduling import Schedule, schedule_greedy


@pytest.fixture
def scheduled(chain_dag):
    schedule = schedule_greedy(chain_dag, 4)
    placement = zigzag_placement(chain_dag, Mesh2D(2, 2), schedule)
    return chain_dag, schedule, placement


def _result(strategy="AD", workload="net", cycles=1000) -> RunResult:
    return RunResult(
        strategy=strategy,
        workload=workload,
        batch=1,
        total_cycles=cycles,
        compute_cycles=cycles,
        noc_blocking_cycles=0,
        dram_blocking_cycles=0,
        num_rounds=3,
        pe_utilization=0.5,
        onchip_reuse_ratio=0.5,
        dram_bytes_read=0,
        dram_bytes_written=0,
        noc_bytes_hops=0,
        energy=EnergyBreakdown(mac_pj=1.0),
        frequency_hz=500e6,
    )


class TestSummarize:
    def test_counts(self, scheduled):
        dag, schedule, _ = scheduled
        s = summarize_schedule(dag, schedule, 4)
        assert s.num_rounds == schedule.num_rounds
        assert s.num_atoms == dag.num_atoms
        assert 0 < s.mean_occupancy <= 1.0
        assert s.samples_per_round == 1.0

    def test_empty_schedule(self, chain_dag):
        s = summarize_schedule(chain_dag, Schedule(), 4)
        assert s.num_rounds == 0 and s.mean_occupancy == 0.0


class TestGantt:
    def test_contains_all_engines(self, scheduled):
        dag, schedule, placement = scheduled
        chart = render_gantt(dag, schedule, placement, 4)
        for e in range(4):
            assert f"E{e}" in chart

    def test_truncation_notice(self, scheduled):
        dag, schedule, placement = scheduled
        chart = render_gantt(dag, schedule, placement, 4, max_rounds=1)
        if schedule.num_rounds > 1:
            assert "more rounds" in chart

    def test_idle_cells_marked(self, scheduled):
        dag, schedule, placement = scheduled
        # With 8 engines but rounds of <=4 atoms, idle slots appear.
        chart = render_gantt(dag, schedule, placement, 8)
        assert "." in chart


class TestTables:
    def test_layer_utilization_sorted_worst_first(self, scheduled):
        dag, _, _ = scheduled
        table = layer_utilization_table(dag)
        assert "mean PE util" in table
        assert len(table.splitlines()) >= 2

    def test_round_composition_mentions_layers(self, scheduled):
        dag, schedule, _ = scheduled
        line = round_composition(dag, schedule, 0)
        assert line.startswith("Round 0")
        assert "x" in line

    def test_comparison_table(self):
        table = comparison_table([_result("AD"), _result("LS", cycles=2000)])
        assert "AD" in table and "LS" in table
        assert "latency" in table

    def test_comparison_rejects_mixed_workloads(self):
        with pytest.raises(ValueError, match="mix"):
            comparison_table([_result(workload="a"), _result(workload="b")])

    def test_comparison_rejects_empty(self):
        with pytest.raises(ValueError):
            comparison_table([])


class TestChromeTrace:
    def test_export_valid_json(self, scheduled, tmp_path):
        import json

        from repro.config import ArchConfig, EngineConfig
        from repro.report import export_chrome_trace
        from repro.sim import SystemSimulator

        dag, schedule, placement = scheduled
        arch = ArchConfig(
            mesh_rows=2, mesh_cols=2,
            engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024),
        )
        result, traces = SystemSimulator(arch, dag).run_traced(
            schedule, placement
        )
        out = tmp_path / "trace.json"
        export_chrome_trace(
            dag, schedule, placement, traces, str(out),
            frequency_hz=arch.engine.frequency_hz,
        )
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        atoms = [e for e in events if e["tid"].startswith("engine")]
        assert len(atoms) == dag.num_atoms
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)

    def test_events_do_not_overlap_per_engine(self, scheduled, tmp_path):
        import json
        from collections import defaultdict

        from repro.config import ArchConfig, EngineConfig
        from repro.report import export_chrome_trace
        from repro.sim import SystemSimulator

        dag, schedule, placement = scheduled
        arch = ArchConfig(
            mesh_rows=2, mesh_cols=2,
            engine=EngineConfig(pe_rows=8, pe_cols=8, buffer_bytes=32 * 1024),
        )
        _, traces = SystemSimulator(arch, dag).run_traced(schedule, placement)
        out = tmp_path / "trace.json"
        export_chrome_trace(dag, schedule, placement, traces, str(out))
        events = json.loads(out.read_text())["traceEvents"]
        lanes = defaultdict(list)
        for e in events:
            lanes[e["tid"]].append((e["ts"], e["ts"] + e["dur"]))
        for spans in lanes.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9
