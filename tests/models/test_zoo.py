"""Tests for the model zoo: shapes, parameter counts, registry."""

import pytest

from repro.ir import TensorShape
from repro.models import (
    BENCH_WORKLOADS,
    PAPER_WORKLOADS,
    available_models,
    characterize,
    efficientnet,
    get_model,
    inception_v3,
    nasnet,
    pnasnet,
    resnet50,
    resnet152,
    resnet1001,
    vgg19,
)


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        for name in PAPER_WORKLOADS:
            assert name in available_models()

    def test_bench_variants_registered(self):
        for name in BENCH_WORKLOADS:
            assert name in available_models()

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("alexnet")

    def test_bench_variants_build_and_validate(self):
        for name in BENCH_WORKLOADS:
            g = get_model(name)
            g.validate()
            assert len(g) > 5


class TestVgg19:
    def test_structure(self):
        g = vgg19()
        convs = [n for n in g.compute_nodes() if type(n.op).__name__ == "Conv2D"]
        fcs = [n for n in g.compute_nodes() if type(n.op).__name__ == "FullyConnected"]
        assert len(convs) == 16
        assert len(fcs) == 3

    def test_params_match_published(self):
        # VGG-19: ~143.7M parameters (Table I rounds to 137M ex. classifier
        # variations); check the conv+fc total is in the published range.
        p = vgg19().num_params()
        assert 130e6 < p < 150e6

    def test_output_is_classifier(self):
        g = vgg19(num_classes=1000)
        assert g.node(g.sinks()[0]).output_shape == TensorShape(1, 1, 1000)

    def test_width_multiplier(self):
        small = vgg19(width_mult=0.5).num_params()
        full = vgg19().num_params()
        assert small < full / 3


class TestResNets:
    def test_resnet50_params(self):
        p = resnet50().num_params()
        assert 24e6 < p < 27e6  # published: 25.6M

    def test_resnet152_params(self):
        p = resnet152().num_params()
        assert 57e6 < p < 62e6  # published: 60.2M

    def test_resnet50_spatial_pyramid(self):
        g = resnet50()
        # Final stage feature map is 7x7x2048 for 224 inputs.
        gap = g.by_name("gap")
        pre_gap = g.node(gap.inputs[0])
        assert pre_gap.output_shape.channels == 2048
        assert pre_gap.output_shape.height == 7

    def test_resnet1001_depth(self):
        g = resnet1001(blocks_per_stage=3)  # reduced for test speed
        convs = len(g.compute_nodes())
        # 3 stages x 3 blocks x (3 convs + occasional proj) + stem + fc.
        assert convs >= 29

    def test_residual_joins_present(self):
        g = resnet50(input_size=64)
        adds = [n for n in g.nodes if type(n.op).__name__ == "Add"]
        assert len(adds) == 16  # 3 + 4 + 6 + 3 blocks


class TestInceptionV3:
    def test_params_match_published(self):
        p = inception_v3().num_params()
        assert 21e6 < p < 25e6  # published: 23.9M

    def test_branch_concats_present(self):
        g = inception_v3()
        concats = [n for n in g.nodes if type(n.op).__name__ == "Concat"]
        assert len(concats) == 11  # 3A + 1RA + 4B + 1RB + 2C

    def test_mixed_channel_count(self):
        g = inception_v3()
        out = g.by_name("mixed_a0_out")
        assert out.output_shape.channels == 64 + 64 + 96 + 32


class TestNasNets:
    def test_nasnet_params_scale(self):
        # Published NASNet-A-Large is 88.9M; our cell omits the doubled
        # separable-conv applications, landing somewhat below.
        p = nasnet(filters=168, repeat=6).num_params()
        assert 40e6 < p < 120e6

    def test_pnasnet_params_scale(self):
        p = pnasnet(filters=216, repeat=4).num_params()
        assert 60e6 < p < 120e6  # published PNASNet-5-Large: 86.1M

    def test_nasnet_cells_concat(self):
        g = nasnet(filters=44, repeat=1, input_size=64)
        concats = [n for n in g.nodes if type(n.op).__name__ == "Concat"]
        assert len(concats) >= 5

    def test_reduction_halves_resolution(self):
        g = nasnet(filters=44, repeat=1, input_size=64)
        s0 = g.by_name("s0_c0_out").output_shape
        s1 = g.by_name("s1_c0_out").output_shape
        assert s1.height == s0.height // 2


class TestEfficientNet:
    def test_b0_structure(self):
        g = efficientnet()
        dw = [
            n
            for n in g.compute_nodes()
            if getattr(n.op, "groups", 1) > 1
        ]
        assert len(dw) == 16  # one depthwise conv per MBConv block

    def test_se_blocks_present(self):
        g = efficientnet()
        scales = [n for n in g.nodes if type(n.op).__name__ == "Scale"]
        assert len(scales) == 16

    def test_se_disabled(self):
        g = efficientnet(se_ratio=0.0)
        scales = [n for n in g.nodes if type(n.op).__name__ == "Scale"]
        assert not scales

    def test_width_rounding_to_8(self):
        g = efficientnet(width_mult=1.1)
        for n in g.compute_nodes():
            if type(n.op).__name__ == "Conv2D" and n.op.groups == 1:
                assert n.output_shape.channels % 8 == 0 or n.output_shape.channels == 1000


class TestCharacterize:
    def test_table1_fields(self):
        info = characterize("resnet50")
        assert info.characteristics == "residual bypass"
        assert info.num_params == resnet50().num_params()
        assert info.num_layers > 50
        assert info.total_macs > 1e9

    def test_bench_inherits_characteristics(self):
        info = characterize("nasnet_bench")
        assert info.characteristics == "NAS-generated"


class TestMobileNetV2:
    def test_params_match_published(self):
        from repro.models import mobilenet_v2

        p = mobilenet_v2().num_params()
        assert 3.0e6 < p < 4.0e6  # published: 3.5M

    def test_inverted_residual_adds(self):
        from repro.models import mobilenet_v2

        g = mobilenet_v2()
        adds = [n for n in g.nodes if type(n.op).__name__ == "Add"]
        assert len(adds) == 10  # stride-1 repeats with matching channels

    def test_bench_variant_registered(self):
        info = characterize("mobilenet_v2_bench")
        assert info.characteristics == "inverted residual"
