"""Table I: DNN workload characterization.

Regenerates the paper's workload table (#layers, #params, structural
characteristics) from the model zoo's *full-size* networks, plus the
reduced variants the other benchmarks run.
"""

from __future__ import annotations

from _common import print_table, save_results

from repro.models import BENCH_WORKLOADS, PAPER_WORKLOADS, characterize


def run_experiment() -> list[dict]:
    rows = []
    for name in PAPER_WORKLOADS + BENCH_WORKLOADS:
        info = characterize(name)
        rows.append(
            {
                "model": info.name,
                "layers": info.num_layers,
                "params_M": round(info.num_params / 1e6, 1),
                "gmacs": round(info.total_macs / 1e9, 2),
                "characteristics": info.characteristics,
            }
        )
    return rows


def test_tab1_workload_characterization(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("tab1_workloads", rows)
    print_table(
        "Table I — workload characterization",
        ["model", "#layers", "#params (M)", "GMACs", "characteristics"],
        [
            [r["model"], r["layers"], r["params_M"], r["gmacs"], r["characteristics"]]
            for r in rows
        ],
    )
    by_name = {r["model"]: r for r in rows}
    # Paper's Table I parameter counts (order-of-magnitude checks).
    assert 130 < by_name["vgg19"]["params_M"] < 150       # paper: 137M
    assert 24 < by_name["resnet50"]["params_M"] < 27      # paper: 26M
    assert 57 < by_name["resnet152"]["params_M"] < 62     # paper: 60M
    assert 21 < by_name["inception_v3"]["params_M"] < 25  # paper: 27M
    assert by_name["efficientnet"]["params_M"] < 10       # paper: 2M
