"""Fig. 12: engine-count design-space exploration.

Fixing the total PE count and on-chip buffer budget, the paper sweeps how
the budget is partitioned into engines (more, smaller engines vs fewer,
larger ones) and finds U-shaped execution-time curves with a sweet spot at
a moderate grid (e.g. 4x4 for several workloads), under two batch sizes.

Reduced scale: a 4096-PE / 2 MB budget swept over 1x1 .. 8x8 grids.
"""

from __future__ import annotations

from _common import BENCH_SA, print_table, save_results

from repro.config import ArchConfig, EngineConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model

#: Grids sharing one 4096-PE / 2 MB budget.
GRIDS = [(1, 1), (2, 2), (4, 4), (8, 8)]

#: Budget holder: 1 engine of 64x64 PEs and 2 MB.
BUDGET = ArchConfig(
    mesh_rows=1,
    mesh_cols=1,
    engine=EngineConfig(pe_rows=64, pe_cols=64, buffer_bytes=2 * 1024 * 1024),
)

WORKLOADS = ["vgg19_bench", "resnet50_bench", "efficientnet_bench"]
BATCHES = [1, 2]


def run_experiment() -> list[dict]:
    rows = []
    for name in WORKLOADS:
        graph = get_model(name)
        for batch in BATCHES:
            cycles_by_grid = {}
            for rows_, cols in GRIDS:
                arch = BUDGET.repartitioned(rows_, cols)
                opts = OptimizerOptions(
                    batch=batch, scheduler="greedy", sa_params=BENCH_SA
                )
                result = (
                    AtomicDataflowOptimizer(graph, arch, opts)
                    .optimize()
                    .result
                )
                cycles_by_grid[f"{rows_}x{cols}"] = result.total_cycles
            best = min(cycles_by_grid, key=cycles_by_grid.get)
            rows.append(
                {
                    "model": name,
                    "batch": batch,
                    "cycles": cycles_by_grid,
                    "sweet_spot": best,
                }
            )
    return rows


def test_fig12_engine_count_sweep(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig12_engine_scaling", rows)
    print_table(
        "Fig. 12 — execution cycles vs engine grid (fixed PE/buffer budget)",
        ["model", "batch"] + [f"{r}x{c}" for r, c in GRIDS] + ["sweet spot"],
        [
            [r["model"], r["batch"]]
            + [r["cycles"][f"{g[0]}x{g[1]}"] for g in GRIDS]
            + [r["sweet_spot"]]
            for r in rows
        ],
    )
    for r in rows:
        # The monolithic 1x1 array is never the best configuration
        # (the paper's core scaling motivation).
        assert r["sweet_spot"] != "1x1", r
        # An interior sweet spot exists for at least some workloads: the
        # curve is not monotonically improving all the way to 8x8.
    interior = sum(r["sweet_spot"] in ("2x2", "4x4") for r in rows)
    assert interior >= 1
    for r in rows:
        # Doubling batch does not change the qualitative trend: same or
        # adjacent sweet spot (paper: "doubled batch size does not change
        # the trend").
        pass
    by_model = {}
    for r in rows:
        by_model.setdefault(r["model"], []).append(r["sweet_spot"])
    for model, spots in by_model.items():
        sizes = [int(s.split("x")[0]) for s in spots]
        assert max(sizes) <= 2 * min(sizes), (model, spots)
