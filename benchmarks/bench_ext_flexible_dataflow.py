"""Extension: flexible 3-parameter dataflow (the paper's Sec. VI discussion).

The paper argues that arrays spatially mapping more than two loop
parameters also benefit from atomic dataflow — only the coefficient scaling
changes.  We implement such a dataflow (``kcw``: width co-mapped with
output channels across PE columns) and compare it against KC-Partition.
Expected shape: ``kcw`` wins on depthwise/small-channel workloads (where
KC is weight-reload-bound) and roughly ties elsewhere.
"""

from __future__ import annotations

from _common import print_table, run_ad, save_results

from repro.models import get_model

WORKLOADS = [
    "efficientnet_bench",   # depthwise-heavy: kcw should win
    "mobilenet_v2_bench",   # depthwise-heavy: kcw should win
    "resnet50_bench",       # channel-rich: kc already fits
    "vgg19_bench",          # channel-rich: kc already fits
]


def run_experiment() -> list[dict]:
    rows = []
    for name in WORKLOADS:
        graph = get_model(name)
        kc = run_ad(graph, dataflow="kc", scheduler="greedy")
        kcw = run_ad(graph, dataflow="kcw", scheduler="greedy")
        rows.append(
            {
                "model": name,
                "kc_cycles": kc.total_cycles,
                "kcw_cycles": kcw.total_cycles,
                "kcw_gain": kc.total_cycles / kcw.total_cycles,
                "kc_util": kc.pe_utilization,
                "kcw_util": kcw.pe_utilization,
            }
        )
    return rows


def test_ext_flexible_dataflow(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("ext_flexible_dataflow", rows)
    print_table(
        "Extension — KC vs flexible KCW dataflow (Sec. VI discussion)",
        ["model", "KC cycles", "KCW cycles", "KCW gain x", "KC util", "KCW util"],
        [
            [
                r["model"], r["kc_cycles"], r["kcw_cycles"], r["kcw_gain"],
                r["kc_util"], r["kcw_util"],
            ]
            for r in rows
        ],
    )
    by_name = {r["model"]: r for r in rows}
    # Depthwise-heavy nets benefit from co-mapping width.
    assert by_name["efficientnet_bench"]["kcw_gain"] > 1.1
    assert by_name["mobilenet_v2_bench"]["kcw_gain"] > 1.1
    # Channel-rich nets do not collapse under kcw (within 25% of kc).
    assert by_name["resnet50_bench"]["kcw_gain"] > 0.75
    assert by_name["vgg19_bench"]["kcw_gain"] > 0.75
