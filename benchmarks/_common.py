"""Shared harness for the per-figure/table benchmarks.

Scale pairing: the paper runs full-size workloads on an 8x8-engine machine;
a pure-Python reproduction pairs the reduced Table I workloads
(``*_bench`` variants) with a 4x4-engine machine so every experiment
finishes in seconds while keeping the atoms-to-engines ratio — the quantity
scheduling behaviour depends on — comparable.  Fig. 12 sweeps engine grids
and Fig. 14 uses the paper's 2x2 prototype configuration unchanged.

Each benchmark prints the paper-style table and writes a JSON record under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.atoms.generation import SAParams
from repro.config import ArchConfig
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.ir.graph import Graph
from repro.metrics import RunResult

#: Machine used by the reduced-scale experiments (4x4 engines, 16x16 PEs,
#: 128 KB/engine — the paper's engine microarchitecture on a smaller grid).
BENCH_ARCH = ArchConfig(mesh_rows=4, mesh_cols=4)

#: Batch size of the throughput/energy experiments (paper: 20; reduced: 4).
BENCH_BATCH = 4

#: Annealing budget for the benchmarks.
BENCH_SA = SAParams(max_iterations=120)

RESULTS_DIR = Path(__file__).parent / "results"


def run_ad(
    graph: Graph,
    arch: ArchConfig = BENCH_ARCH,
    dataflow: str = "kc",
    batch: int = 1,
    scheduler: str = "dp",
    jobs: int = 1,
    **extra,
) -> RunResult:
    """Run the full atomic-dataflow framework and return its result.

    ``jobs`` fans candidate evaluation across worker processes; any value
    reaches the same answer (the search is jobs-invariant by design), so
    the committed result JSONs are reproducible at any parallelism.
    """
    options = OptimizerOptions(
        dataflow=dataflow,
        batch=batch,
        scheduler=scheduler,
        sa_params=BENCH_SA,
        jobs=jobs,
        **extra,
    )
    return AtomicDataflowOptimizer(graph, arch, options).optimize().result


def save_results(name: str, rows: list[dict]) -> None:
    """Persist one experiment's rows as JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as f:
        json.dump(rows, f, indent=2)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned text table (the figure/table the bench regenerates)."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in str_rows:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)
