"""Fig. 14 / Sec. V-D: the 2x2-engine prototype comparison.

The paper builds a 2x2-engine FPGA/ASIC prototype (32x32 INT8 MACs per
engine, 600 MHz) and measures VGG at 49.2 fps (LS), 57.9 fps (Rammer), and
64.3 fps (AD); ResNet-50 at 156.2 / 194.4 / 223.9 fps — i.e. the ordering
AD > Rammer > LS, with AD ~1.3x over LS.  We run the same configuration in
simulation (hardware substitution documented in DESIGN.md).
"""

from __future__ import annotations

from _common import BENCH_SA, print_table, save_results

from repro.config import PROTOTYPE_ARCH
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.baselines import run_layer_sequential, run_rammer
from repro.models import get_model

#: Paper's measured fps on the physical prototype.
PAPER_FPS = {
    "vgg19_bench": {"LS": 49.2, "Rammer": 57.9, "AD": 64.3},
    "resnet50_bench": {"LS": 156.2, "Rammer": 194.4, "AD": 223.9},
}

BATCH = 4  # throughput measurement streams frames


def run_experiment() -> list[dict]:
    rows = []
    for name in ("vgg19_bench", "resnet50_bench"):
        graph = get_model(name)
        opts = OptimizerOptions(
            batch=BATCH, scheduler="greedy", sa_params=BENCH_SA
        )
        ad = (
            AtomicDataflowOptimizer(graph, PROTOTYPE_ARCH, opts)
            .optimize()
            .result
        )
        ls = run_layer_sequential(graph, PROTOTYPE_ARCH, batch=BATCH)
        ram = run_rammer(graph, PROTOTYPE_ARCH, batch=BATCH)
        rows.append(
            {
                "model": name,
                "ls_fps": ls.throughput_fps,
                "rammer_fps": ram.throughput_fps,
                "ad_fps": ad.throughput_fps,
                "ad_over_ls": ad.throughput_fps / ls.throughput_fps,
                "paper_ad_over_ls": (
                    PAPER_FPS[name]["AD"] / PAPER_FPS[name]["LS"]
                ),
            }
        )
    return rows


def test_fig14_prototype_ordering(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig14_prototype", rows)
    print_table(
        "Fig. 14 / Sec. V-D — 2x2-engine prototype (fps)",
        ["model", "LS", "Rammer", "AD", "AD/LS x", "paper AD/LS x"],
        [
            [
                r["model"], r["ls_fps"], r["rammer_fps"], r["ad_fps"],
                r["ad_over_ls"], r["paper_ad_over_ls"],
            ]
            for r in rows
        ],
    )
    for r in rows:
        # The prototype's ordering: AD fastest, Rammer between, LS slowest
        # (Rammer may tie LS at this tiny engine count).
        assert r["ad_fps"] > r["rammer_fps"] * 0.999, r
        assert r["rammer_fps"] >= r["ls_fps"] * 0.98, r
        # AD's advantage over LS is a moderate factor like the paper's
        # ~1.3x-1.43x, not an artifact blowup.
        assert 1.0 < r["ad_over_ls"] < 6.0, r
