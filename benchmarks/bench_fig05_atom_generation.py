"""Fig. 5: atomic tensor generation quality.

(a) histogram of atom execution cycles after SA — cycles concentrate into
    one region (balanced parallel atoms);
(b) convergence of SA vs GA — SA converges faster and to lower variance.
"""

from __future__ import annotations

import numpy as np
from _common import BENCH_ARCH, print_table, save_results

from repro.atoms import AtomGenerator, GAParams, SAParams
from repro.engine import EngineCostModel, get_dataflow
from repro.ir.transforms import fuse_elementwise
from repro.models import get_model

WORKLOADS = [
    "resnet50_bench",
    "inception_v3_bench",
    "nasnet_bench",
    "efficientnet_bench",
]

ITERATIONS = 120


def _generator(name: str, seed: int) -> AtomGenerator:
    graph = fuse_elementwise(get_model(name)).graph
    cm = EngineCostModel(BENCH_ARCH.engine, get_dataflow("kc"))
    return AtomGenerator(graph, cm, rng=np.random.default_rng(seed))


def run_experiment() -> list[dict]:
    rows = []
    for name in WORKLOADS:
        sa = _generator(name, 0).generate_sa(
            SAParams(max_iterations=ITERATIONS), parallel_hint=None
        )
        ga = _generator(name, 0).generate_ga(
            GAParams(generations=ITERATIONS // 4, population=12)
        )
        cycles = np.array(list(sa.layer_cycles.values()), dtype=float)
        hist, edges = np.histogram(cycles, bins=8)
        rows.append(
            {
                "model": name,
                "sa_final_var": sa.energy,
                "ga_final_var": ga.energy,
                "sa_iters_to_converge": sa.iterations,
                "cycle_cv": float(cycles.std() / cycles.mean()),
                "hist_peak_share": float(hist.max() / hist.sum()),
                "sa_history": list(sa.history),
                "ga_history": list(ga.history),
            }
        )
    return rows


def test_fig05_sa_vs_ga(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig05_atom_generation", rows)
    print_table(
        "Fig. 5 — atom generation: SA vs GA",
        ["model", "SA final Var", "GA final Var", "cycle CV", "hist peak share"],
        [
            [
                r["model"],
                r["sa_final_var"],
                r["ga_final_var"],
                r["cycle_cv"],
                r["hist_peak_share"],
            ]
            for r in rows
        ],
    )
    for r in rows:
        # Fig. 5(a): cycles concentrate — the modal histogram bin holds a
        # large share of the layers.
        assert r["hist_peak_share"] >= 0.3, r
        # Fig. 5(b): SA stops at lower (or equal) variance than GA.
        assert r["sa_final_var"] <= r["ga_final_var"] * 1.1, r
        # The returned (best-seen) energy improves on the random start; the
        # raw history trace may end above it because SA accepts uphill moves.
        assert r["sa_final_var"] <= r["sa_history"][0] + 1e-12
        assert r["sa_final_var"] == min(r["sa_history"])
