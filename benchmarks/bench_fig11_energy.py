"""Fig. 11: inference energy with batching.

Paper (batch 20): IL-Pipe and AD are the most energy-efficient strategies;
AD trails IL-Pipe slightly on some workloads (more off-chip access and
inter-engine transfer) and wins on others thanks to the buffering policy,
minimum-hop mapping, and shorter runtime (less static energy).  LS and
CNN-P pay heavily for DRAM round-trips.
"""

from __future__ import annotations

from _common import BENCH_ARCH, BENCH_BATCH, print_table, run_ad, save_results

from repro.baselines import (
    run_cnn_partition,
    run_il_pipe,
    run_layer_sequential,
)
from repro.models import BENCH_WORKLOADS, get_model


def run_experiment() -> list[dict]:
    rows = []
    for name in BENCH_WORKLOADS:
        graph = get_model(name)
        ad = run_ad(graph, batch=BENCH_BATCH)
        ls = run_layer_sequential(graph, BENCH_ARCH, batch=BENCH_BATCH)
        cnnp = run_cnn_partition(graph, BENCH_ARCH, batch=BENCH_BATCH)
        ilp = run_il_pipe(graph, BENCH_ARCH, batch=BENCH_BATCH)
        rows.append(
            {
                "model": name,
                "ad_mj": ad.energy.total_mj,
                "ls_mj": ls.energy.total_mj,
                "cnnp_mj": cnnp.energy.total_mj,
                "ilp_mj": ilp.energy.total_mj,
                "ad_dram_mj": ad.energy.dram_pj * 1e-9,
                "ls_dram_mj": ls.energy.dram_pj * 1e-9,
            }
        )
    return rows


def test_fig11_energy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig11_energy", rows)
    print_table(
        f"Fig. 11 — inference energy, batch={BENCH_BATCH} (mJ)",
        ["model", "AD", "LS", "CNN-P", "IL-Pipe"],
        [
            [r["model"], r["ad_mj"], r["ls_mj"], r["cnnp_mj"], r["ilp_mj"]]
            for r in rows
        ],
    )
    for r in rows:
        # AD is always cheaper than LS (on-chip reuse vs DRAM round-trips).
        assert r["ad_mj"] < r["ls_mj"], r
        # AD and IL-Pipe occupy the same energy regime (paper: each wins on
        # some workloads, neither by an order of magnitude).
        assert r["ad_mj"] < 4 * r["ilp_mj"], r
    # IL-Pipe or AD is the cheapest strategy on every workload.
    for r in rows:
        cheapest = min(r["ad_mj"], r["ls_mj"], r["cnnp_mj"], r["ilp_mj"])
        assert cheapest in (r["ad_mj"], r["ilp_mj"]), r
