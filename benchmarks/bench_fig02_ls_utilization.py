"""Fig. 2: Layer-Sequential PE utilization is low.

The paper runs DNN layers one-at-a-time, evenly partitioned across all
engines, and reports layer-averaged PE utilization of only 13.5-26.9% on
ResNet-50, Inception-v3, NASNet, and EfficientNet.  This bench regenerates
the per-workload averages (communication delay excluded, as in the paper).
"""

from __future__ import annotations

from _common import BENCH_ARCH, print_table, save_results

from repro.baselines import ls_utilization_report
from repro.models import get_model

#: The four workloads of Fig. 2 (reduced variants).
WORKLOADS = [
    "resnet50_bench",
    "inception_v3_bench",
    "nasnet_bench",
    "efficientnet_bench",
]

#: The paper's layer-averaged LS utilization per workload.
PAPER_VALUES = {
    "resnet50_bench": 0.2691,
    "inception_v3_bench": 0.1748,
    "nasnet_bench": 0.1834,
    "efficientnet_bench": 0.1353,
}


def run_experiment() -> list[dict]:
    rows = []
    for name in WORKLOADS:
        rep = ls_utilization_report(get_model(name), BENCH_ARCH)
        rows.append(
            {
                "model": name,
                "ls_utilization": rep.average,
                "paper": PAPER_VALUES[name],
                "num_layers": len(rep.per_layer),
            }
        )
    return rows


def test_fig02_ls_underutilization(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig02_ls_utilization", rows)
    print_table(
        "Fig. 2 — LS layer-averaged PE utilization",
        ["model", "measured", "paper"],
        [[r["model"], r["ls_utilization"], r["paper"]] for r in rows],
    )
    # Shape check: naive LS leaves the clear majority of PEs idle on every
    # workload (paper: 13.5-26.9%; reduced scale softens the effect).
    for r in rows:
        assert r["ls_utilization"] < 0.55, r
    # The average across workloads lands well under half utilization.
    mean = sum(r["ls_utilization"] for r in rows) / len(rows)
    assert mean < 0.45
