"""Table II: PE utilization per strategy; AD NoC overhead and on-chip reuse.

Paper (batch 20, communication excluded for the utilization rows):
LS 49-69%, CNN-P 57-80%, IL-Pipe 46-68%, AD 79-95%; AD's NoC overhead is
only 9.4-17.6% of total time, and 54.1-90.8% of data is reused on-chip.
"""

from __future__ import annotations

from _common import (
    BENCH_ARCH,
    BENCH_BATCH,
    BENCH_SA,
    print_table,
    save_results,
)

from repro.baselines import (
    cnn_partition_utilization,
    run_il_pipe,
    run_layer_sequential,
)
from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import BENCH_WORKLOADS, get_model


def run_experiment() -> list[dict]:
    rows = []
    for name in BENCH_WORKLOADS:
        graph = get_model(name)
        opts = OptimizerOptions(batch=BENCH_BATCH, scheduler="dp", sa_params=BENCH_SA)
        ad = AtomicDataflowOptimizer(graph, BENCH_ARCH, opts).optimize().result
        ls = run_layer_sequential(graph, BENCH_ARCH, batch=BENCH_BATCH)
        ilp = run_il_pipe(graph, BENCH_ARCH, batch=BENCH_BATCH)
        cnnp_util = cnn_partition_utilization(graph, BENCH_ARCH, num_clps=4)
        rows.append(
            {
                "model": name,
                "ls_util": ls.pe_utilization,
                "cnnp_util": cnnp_util,
                "ilp_util": ilp.pe_utilization,
                "ad_util": ad.pe_utilization,
                "ad_noc_overhead": ad.noc_overhead_fraction,
                "ad_onchip_reuse": ad.onchip_reuse_ratio,
            }
        )
    return rows


def test_tab2_utilization_and_reuse(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("tab2_utilization", rows)
    print_table(
        f"Table II — utilization / NoC overhead / reuse (batch={BENCH_BATCH})",
        ["model", "LS", "CNN-P", "IL-Pipe", "AD", "AD NoC OH", "AD reuse"],
        [
            [
                r["model"], r["ls_util"], r["cnnp_util"], r["ilp_util"],
                r["ad_util"], r["ad_noc_overhead"], r["ad_onchip_reuse"],
            ]
            for r in rows
        ],
    )
    ad_beats_ls = sum(r["ad_util"] > r["ls_util"] for r in rows)
    assert ad_beats_ls >= len(rows) - 1  # AD tops LS essentially everywhere
    for r in rows:
        # CNN-P's dedicated CLPs match layers well (paper: above LS).
        assert r["cnnp_util"] > 0
        # AD NoC overhead stays a minor fraction (paper: 9.4-17.6%).
        assert r["ad_noc_overhead"] < 0.35, r
    # Majority of AD's data is served on-chip on most workloads.
    high_reuse = sum(r["ad_onchip_reuse"] > 0.5 for r in rows)
    assert high_reuse >= len(rows) // 2
