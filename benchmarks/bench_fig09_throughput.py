"""Fig. 9: DNN inference throughput with batching.

Paper (batch 20): CNN-P's layer-granularity pipelining beats LS everywhere,
but AD's flexible atom scheduling beats CNN-P by 1.12-1.38x (KC) and
1.08-1.42x (YX).  Reduced scale uses batch 4.
"""

from __future__ import annotations

from _common import BENCH_ARCH, BENCH_BATCH, print_table, run_ad, save_results

from repro.baselines import run_cnn_partition, run_layer_sequential
from repro.models import BENCH_WORKLOADS, get_model


def run_experiment(dataflow: str = "kc") -> list[dict]:
    rows = []
    for name in BENCH_WORKLOADS:
        graph = get_model(name)
        ad = run_ad(graph, dataflow=dataflow, batch=BENCH_BATCH)
        cnnp = run_cnn_partition(graph, BENCH_ARCH, dataflow, batch=BENCH_BATCH)
        ls = run_layer_sequential(graph, BENCH_ARCH, dataflow, batch=BENCH_BATCH)
        rows.append(
            {
                "model": name,
                "dataflow": dataflow,
                "ad_fps": ad.throughput_fps,
                "cnnp_fps": cnnp.throughput_fps,
                "ls_fps": ls.throughput_fps,
                "ad_over_cnnp": ad.throughput_fps / cnnp.throughput_fps,
                "cnnp_over_ls": cnnp.throughput_fps / ls.throughput_fps,
            }
        )
    return rows


def test_fig09_throughput_kc(benchmark):
    rows = benchmark.pedantic(run_experiment, args=("kc",), rounds=1, iterations=1)
    save_results("fig09_throughput_kc", rows)
    print_table(
        f"Fig. 9 — throughput, batch={BENCH_BATCH}, KC-Partition (fps)",
        ["model", "AD", "CNN-P", "LS", "AD/CNN-P x", "CNN-P/LS x"],
        [
            [
                r["model"], r["ad_fps"], r["cnnp_fps"], r["ls_fps"],
                r["ad_over_cnnp"], r["cnnp_over_ls"],
            ]
            for r in rows
        ],
    )
    # CNN-P's pipelining beats LS on the clear majority of workloads
    # (paper: all; our batch-enhanced LS is stronger on perfectly uniform
    # chains like ResNet-1001, where pipelined samples already align).
    assert sum(r["cnnp_over_ls"] > 1.0 for r in rows) >= len(rows) - 2
    for r in rows:
        # AD at least matches CNN-P everywhere and beats it on most
        # workloads (paper: 1.12-1.38x).
        assert r["ad_over_cnnp"] > 0.97, r
    assert sum(r["ad_over_cnnp"] > 1.0 for r in rows) >= len(rows) - 1
