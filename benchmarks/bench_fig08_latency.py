"""Fig. 8: DNN inference latency, batch size 1.

The paper: AD beats IL-Pipe by 1.42-3.78x and CNN-P (== LS at batch 1) by
1.45-2.30x on the KC-Partition dataflow, with YX similar; the ideal bound
(perfect utilization, zero memory delay) frames the headroom.
"""

from __future__ import annotations

from _common import BENCH_ARCH, print_table, run_ad, save_results

from repro.baselines import ideal_result, run_il_pipe, run_layer_sequential
from repro.models import BENCH_WORKLOADS, get_model


def run_experiment(dataflow: str = "kc") -> list[dict]:
    rows = []
    for name in BENCH_WORKLOADS:
        graph = get_model(name)
        ad = run_ad(graph, dataflow=dataflow)
        ls = run_layer_sequential(graph, BENCH_ARCH, dataflow)
        ilp = run_il_pipe(graph, BENCH_ARCH, dataflow)
        ideal = ideal_result(graph, BENCH_ARCH, dataflow)
        rows.append(
            {
                "model": name,
                "dataflow": dataflow,
                "ad_ms": ad.latency_ms,
                "ls_ms": ls.latency_ms,
                "ilp_ms": ilp.latency_ms,
                "ideal_ms": ideal.latency_ms,
                "speedup_vs_ls": ls.total_cycles / ad.total_cycles,
                "speedup_vs_ilp": ilp.total_cycles / ad.total_cycles,
            }
        )
    return rows


def test_fig08_latency_kc(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=("kc",), rounds=1, iterations=1
    )
    save_results("fig08_latency_kc", rows)
    print_table(
        "Fig. 8 — inference latency, batch=1, KC-Partition (ms)",
        ["model", "AD", "LS/CNN-P", "IL-Pipe", "Ideal", "AD/LS x", "AD/ILP x"],
        [
            [
                r["model"], r["ad_ms"], r["ls_ms"], r["ilp_ms"], r["ideal_ms"],
                r["speedup_vs_ls"], r["speedup_vs_ilp"],
            ]
            for r in rows
        ],
    )
    for r in rows:
        # AD at least matches LS on every workload and beats IL-Pipe, whose
        # fill/drain delay dominates at batch 1 (paper: 1.42-3.78x).
        assert r["speedup_vs_ls"] >= 0.99, r
        assert r["speedup_vs_ilp"] > 1.2, r
        assert r["ad_ms"] >= r["ideal_ms"]
    # Geometric-mean speedup over LS lands in the paper's reported band.
    import math

    gm = math.exp(
        sum(math.log(r["speedup_vs_ls"]) for r in rows) / len(rows)
    )
    assert gm > 1.2


def test_fig08_latency_yx(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=("yx",), rounds=1, iterations=1
    )
    save_results("fig08_latency_yx", rows)
    print_table(
        "Fig. 8 — inference latency, batch=1, YX-Partition (ms)",
        ["model", "AD", "LS/CNN-P", "IL-Pipe", "AD/LS x"],
        [
            [r["model"], r["ad_ms"], r["ls_ms"], r["ilp_ms"], r["speedup_vs_ls"]]
            for r in rows
        ],
    )
    # "the situation is similar on the YX-Partition case"
    for r in rows:
        assert r["speedup_vs_ls"] >= 0.99, r
