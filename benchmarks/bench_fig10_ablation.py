"""Fig. 10: per-stage performance improvements (ablation).

The paper attributes 1.17-1.42x to DP-based DAG scheduling, 1.06-1.21x to
SA-based atom generation, and 1.07-1.17x to the on-chip reuse mechanisms
(mapping + buffering).  This bench toggles each stage against its naive
counterpart and reports the speedup each contributes.
"""

from __future__ import annotations

from _common import BENCH_ARCH, BENCH_SA, print_table, save_results

from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model

WORKLOADS = [
    "vgg19_bench",
    "resnet50_bench",
    "inception_v3_bench",
    "efficientnet_bench",
]


def _cycles(graph, **options) -> int:
    opts = OptimizerOptions(sa_params=BENCH_SA, **options)
    return (
        AtomicDataflowOptimizer(graph, BENCH_ARCH, opts)
        .optimize()
        .result.total_cycles
    )


def run_experiment() -> list[dict]:
    rows = []
    for name in WORKLOADS:
        graph = get_model(name)
        full = _cycles(graph, scheduler="dp", mapping="optimized")
        no_sa = _cycles(
            graph, atom_generation="even", scheduler="dp", mapping="optimized"
        )
        no_dp = _cycles(graph, scheduler="greedy", mapping="optimized")
        no_map = _cycles(graph, scheduler="dp", mapping="zigzag")
        rows.append(
            {
                "model": name,
                "full_cycles": full,
                "sa_gain": no_sa / full,
                "dp_gain": no_dp / full,
                "map_gain": no_map / full,
            }
        )
    return rows


def test_fig10_per_stage_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig10_ablation", rows)
    print_table(
        "Fig. 10 — per-stage speedups (x over the stage's naive variant)",
        ["model", "SA atoms", "DP scheduling", "mapping+buffering"],
        [[r["model"], r["sa_gain"], r["dp_gain"], r["map_gain"]] for r in rows],
    )
    # Every stage is at worst neutral, and at least one workload shows a
    # material gain per stage (paper: SA 1.06-1.21, DP 1.17-1.42,
    # reuse 1.07-1.17; the search keeps fallback candidates, so stage gains
    # can be flat on workloads where the naive variant is already optimal).
    for r in rows:
        assert r["sa_gain"] >= 0.97, r
        assert r["dp_gain"] >= 0.97, r
        assert r["map_gain"] >= 0.97, r
    assert max(r["sa_gain"] for r in rows) > 1.2
    assert max(r["dp_gain"] for r in rows) > 1.02
    assert max(r["map_gain"] for r in rows) > 1.05
