"""Extension: interconnect topology comparison (mesh vs torus).

Sec. IV-C lists 2D-mesh, H-tree, and Torus as the interconnects scalable
accelerators use; the paper evaluates on the mesh.  With the topology
abstracted behind ``hop_distance``/``route``, re-targeting atomic dataflow
to a torus is one config field.  Expected shape: the torus's wraparound
links reduce hop-weighted traffic (never increase it), with end-to-end
gains bounded by how NoC-bound each workload is.
"""

from __future__ import annotations

from dataclasses import replace

from _common import BENCH_ARCH, print_table, run_ad, save_results

from repro.config import NocConfig
from repro.models import get_model

WORKLOADS = ["resnet50_bench", "inception_v3_bench", "nasnet_bench"]


def run_experiment() -> list[dict]:
    torus_arch = replace(BENCH_ARCH, noc=NocConfig(topology="torus"))
    rows = []
    for name in WORKLOADS:
        graph = get_model(name)
        mesh = run_ad(graph, arch=BENCH_ARCH, scheduler="greedy")
        torus = run_ad(graph, arch=torus_arch, scheduler="greedy")
        rows.append(
            {
                "model": name,
                "mesh_cycles": mesh.total_cycles,
                "torus_cycles": torus.total_cycles,
                "mesh_hop_bytes": mesh.noc_bytes_hops,
                "torus_hop_bytes": torus.noc_bytes_hops,
                "torus_gain": mesh.total_cycles / torus.total_cycles,
            }
        )
    return rows


def test_ext_topology(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("ext_topology", rows)
    print_table(
        "Extension — 2D mesh vs torus interconnect",
        ["model", "mesh cycles", "torus cycles", "gain x",
         "mesh hop-bytes", "torus hop-bytes"],
        [
            [
                r["model"], r["mesh_cycles"], r["torus_cycles"],
                r["torus_gain"], r["mesh_hop_bytes"], r["torus_hop_bytes"],
            ]
            for r in rows
        ],
    )
    for r in rows:
        # Wraparound links never increase hop-weighted traffic, and
        # end-to-end time stays within noise of the mesh or improves.
        assert r["torus_hop_bytes"] <= r["mesh_hop_bytes"] * 1.001, r
        assert r["torus_gain"] > 0.97, r
