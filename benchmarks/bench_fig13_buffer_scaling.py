"""Fig. 13: per-engine buffer-size scaling.

The paper grows each engine's SRAM and observes performance improves with
buffer size but saturates beyond 128 KB — the data-transfer and reuse
techniques keep small buffers efficient, so extra capacity has diminishing
returns.
"""

from __future__ import annotations

from dataclasses import replace

from _common import BENCH_ARCH, BENCH_SA, print_table, save_results

from repro.framework import AtomicDataflowOptimizer, OptimizerOptions
from repro.models import get_model

BUFFER_SIZES_KB = [16, 32, 64, 128, 256]
WORKLOADS = ["resnet50_bench", "inception_v3_bench"]


def run_experiment() -> list[dict]:
    rows = []
    for name in WORKLOADS:
        graph = get_model(name)
        cycles = {}
        for kb in BUFFER_SIZES_KB:
            arch = replace(
                BENCH_ARCH,
                engine=replace(BENCH_ARCH.engine, buffer_bytes=kb * 1024),
            )
            opts = OptimizerOptions(scheduler="greedy", sa_params=BENCH_SA)
            result = (
                AtomicDataflowOptimizer(graph, arch, opts).optimize().result
            )
            cycles[kb] = result.total_cycles
        rows.append({"model": name, "cycles": cycles})
    return rows


def test_fig13_buffer_size_sweep(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results("fig13_buffer_scaling", rows)
    print_table(
        "Fig. 13 — execution cycles vs per-engine buffer size",
        ["model"] + [f"{kb}KB" for kb in BUFFER_SIZES_KB],
        [
            [r["model"]] + [r["cycles"][kb] for kb in BUFFER_SIZES_KB]
            for r in rows
        ],
    )
    for r in rows:
        c = r["cycles"]
        # Bigger buffers help overall: the largest configuration is at
        # least as fast as the smallest.
        assert c[BUFFER_SIZES_KB[-1]] <= c[BUFFER_SIZES_KB[0]], r
        # Diminishing returns: the 128KB -> 256KB step buys less than the
        # 16KB -> 64KB step (paper: "trends slow down when exceeding
        # 128KB").
        early_gain = c[16] - c[64]
        late_gain = c[128] - c[256]
        assert late_gain <= max(early_gain, 0) + max(1, int(0.02 * c[128])), r
